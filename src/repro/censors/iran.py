"""Iran's censorship model (§5.2).

Behaviour from the paper:

- censors HTTP (Host header) and HTTPS (SNI), each only on its default
  port (80/443); DNS-over-TCP is no longer censored (contrary to Aryan
  et al.'s 2013 findings);
- stateless per-packet DPI with no TCP reassembly;
- in-path "blackholing": on a match it drops the offending packet and
  every subsequent client packet of that flow for one minute, so the
  client simply times out.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from ..netsim import PathContext
from ..obs.metrics import Counter
from ..packets import Packet
from .base import Censor, FlowKey, flow_key
from .dpi import match_http, match_https
from .keywords import IRAN_KEYWORDS, KeywordSet

__all__ = ["IranCensor", "BLACKHOLE_DURATION"]

#: How long Iran blackholes a flow after a forbidden request (seconds).
BLACKHOLE_DURATION = 60.0

#: Client packets swallowed by an already-armed blackhole (the verdict
#: that armed it is counted separately in repro_censor_verdicts_total).
_BLACKHOLE_DROPS = Counter(
    "repro_iran_blackhole_drops_total",
    "Packets dropped by Iran's in-path blackhole after the verdict",
)


class IranCensor(Censor):
    """Stateless in-path censor that blackholes offending flows."""

    name = "iran"

    def __init__(
        self,
        keywords: KeywordSet = IRAN_KEYWORDS,
        http_ports: FrozenSet[int] = frozenset({80}),
        https_ports: FrozenSet[int] = frozenset({443}),
        duration: float = BLACKHOLE_DURATION,
        inspect_depth: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.keywords = keywords
        self.http_ports = http_ports
        self.https_ports = https_ports
        self.duration = duration
        # Adaptive knob (repro.censors.adaptive): payload bytes the DPI
        # examines per packet (None = unbounded, the calibrated model).
        self.inspect_depth = inspect_depth
        self.blackholed: Dict[FlowKey, float] = {}

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        if packet.tcp is None:
            return [packet]  # TCP censorship only
        if not self.is_client_to_server(direction):
            return [packet]
        key = flow_key(packet)
        expiry = self.blackholed.get(key)
        if expiry is not None and ctx.now < expiry:
            _BLACKHOLE_DROPS.inc()
            ctx.record("drop", packet, "blackholed")
            return []
        if packet.load and self._forbidden(packet):
            self.record_censorship(ctx, packet, "blackholing flow")
            self.blackholed[key] = ctx.now + self.duration
            return []  # the offending packet itself is dropped
        return [packet]

    def _forbidden(self, packet: Packet) -> bool:
        load = packet.load
        if self.inspect_depth is not None:
            load = load[: self.inspect_depth]
        if packet.dport in self.http_ports:
            return match_http(load, self.keywords) is True
        if packet.dport in self.https_ports:
            return match_https(load, self.keywords) is True
        return False
