"""Deep-packet-inspection classifiers shared by the censor models.

Each function inspects raw client-to-server payload bytes and returns a
three-valued verdict:

- ``None`` — the bytes are not recognizable as (a complete instance of)
  the protocol; censors treat this as "not mine / can't tell", which is
  exactly how segmentation-based strategies slip through non-reassembling
  DPI;
- ``False`` — recognized and benign;
- ``True`` — recognized and forbidden.
"""

from __future__ import annotations

import re
from typing import Optional

from ..apps.dns import parse_query_name
from ..apps.tls import parse_sni
from .keywords import KeywordSet

__all__ = [
    "match_http",
    "match_https",
    "match_dns",
    "match_ftp",
    "match_smtp",
    "looks_like_http_get",
]

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ")

#: The minimum well-formed GET prefix Kazakhstan's censor pattern-matches
#: (Strategy 10: ``GET / HTTP1.`` — dropping the final "." breaks it).
#: Real request lines (``GET / HTTP/1.1``) also match.
_GET_PREFIX_RE = re.compile(rb"^GET \S+ HTTP/?1?\.")


def looks_like_http_get(data: bytes) -> bool:
    """Whether ``data`` starts with a well-formed HTTP GET prefix."""
    return _GET_PREFIX_RE.match(data) is not None


def match_http(data: bytes, keywords: KeywordSet) -> Optional[bool]:
    """Classify an HTTP request."""
    if not data.startswith(_HTTP_METHODS):
        return None
    head = data.split(b"\r\n\r\n", 1)[0]
    request_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
    if " HTTP/" not in request_line:
        return None  # incomplete request line (e.g. split across segments)
    target = request_line.split(" ")[1] if len(request_line.split(" ")) > 1 else ""
    for keyword in keywords.http_keywords:
        if keyword in target:
            return True
    host = ""
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"host:"):
            host = line.split(b":", 1)[1].strip().decode("latin-1", "replace")
            break
    if host in keywords.http_hosts:
        return True
    return False


def match_https(data: bytes, keywords: KeywordSet) -> Optional[bool]:
    """Classify a TLS ClientHello by its SNI."""
    if not data[:1] == b"\x16":
        return None
    sni = parse_sni(data)
    if sni is None:
        return None  # truncated hello: censor could not extract the SNI
    return sni in keywords.sni_names


def match_dns(data: bytes, keywords: KeywordSet) -> Optional[bool]:
    """Classify a DNS-over-TCP query by its qname."""
    qname = parse_query_name(data)
    if qname is None:
        return None
    return qname in keywords.dns_names


def match_ftp(data: bytes, keywords: KeywordSet) -> Optional[bool]:
    """Classify FTP control-channel commands."""
    text = data.decode("latin-1", "replace")
    lines = [line for line in text.split("\r\n") if line]
    recognized = False
    for line in lines:
        verb = line.split(" ")[0].upper()
        if verb in ("USER", "PASS", "RETR", "CWD", "LIST", "STOR", "QUIT"):
            recognized = True
            argument = line.partition(" ")[2].lower()
            if verb == "RETR" and any(k in argument for k in keywords.ftp_keywords):
                return True
    return False if recognized else None


def match_smtp(data: bytes, keywords: KeywordSet) -> Optional[bool]:
    """Classify SMTP commands (the GFW matches the RCPT recipient)."""
    text = data.decode("latin-1", "replace")
    lines = [line for line in text.split("\r\n") if line]
    recognized = False
    for line in lines:
        verb = line.split(":")[0].split(" ")[0].upper()
        if verb in ("HELO", "EHLO", "MAIL", "RCPT", "DATA", "QUIT"):
            recognized = True
            if verb == "RCPT":
                recipient = line.partition(":")[2].strip().strip("<>").lower()
                if recipient in {r.lower() for r in keywords.smtp_recipients}:
                    return True
    return False if recognized else None
