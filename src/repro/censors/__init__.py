"""Censor models: China's GFW, India's Airtel, Iran, Kazakhstan, carriers.

Each censor is a :class:`~repro.netsim.Middlebox` implementing the
behaviour the paper reverse-engineered. See each module's docstring for
the paper sections the behaviour comes from, and
:mod:`repro.censors.gfw.profiles` for the calibration constants.
"""

from .adaptive import (
    ADAPTIVE_COUNTRIES,
    CENSOR_PARAM_SPECS,
    CensorGenome,
    ParamSpec,
    axis_probe_genomes,
    build_censor,
    seeded_censor_population,
)
from .base import Censor, client_oriented_key, flow_key
from .carrier import CarrierNATBox, att_box, tmobile_box, wifi_box
from .dpi import (
    looks_like_http_get,
    match_dns,
    match_ftp,
    match_http,
    match_https,
    match_smtp,
)
from .gfw import CHINA_PROFILES, BoxProfile, GreatFirewall, ProtocolBox
from .india import AirtelCensor, build_block_page
from .iran import BLACKHOLE_DURATION, IranCensor
from .kazakhstan import MITM_DURATION, PAYLOAD_IGNORE_THRESHOLD, KazakhstanCensor
from .keywords import (
    CHINA_KEYWORDS,
    INDIA_KEYWORDS,
    IRAN_KEYWORDS,
    KAZAKHSTAN_KEYWORDS,
    RUSSIA_KEYWORDS,
    SOUTHKOREA_KEYWORDS,
    KeywordSet,
)
from .sni import (
    SNI_REASSEMBLY_BYTES,
    RUSSIA_TRACKING_WINDOW,
    SOUTHKOREA_TRACKING_WINDOW,
    SNICensor,
    russia_censor,
    southkorea_censor,
)

__all__ = [
    "ADAPTIVE_COUNTRIES",
    "AirtelCensor",
    "BLACKHOLE_DURATION",
    "BoxProfile",
    "CENSOR_PARAM_SPECS",
    "CHINA_KEYWORDS",
    "CHINA_PROFILES",
    "CarrierNATBox",
    "Censor",
    "CensorGenome",
    "GreatFirewall",
    "INDIA_KEYWORDS",
    "IRAN_KEYWORDS",
    "IranCensor",
    "KAZAKHSTAN_KEYWORDS",
    "KazakhstanCensor",
    "KeywordSet",
    "MITM_DURATION",
    "PAYLOAD_IGNORE_THRESHOLD",
    "ParamSpec",
    "ProtocolBox",
    "RUSSIA_KEYWORDS",
    "RUSSIA_TRACKING_WINDOW",
    "SNICensor",
    "SNI_REASSEMBLY_BYTES",
    "SOUTHKOREA_KEYWORDS",
    "SOUTHKOREA_TRACKING_WINDOW",
    "att_box",
    "axis_probe_genomes",
    "build_block_page",
    "build_censor",
    "client_oriented_key",
    "flow_key",
    "looks_like_http_get",
    "match_dns",
    "match_ftp",
    "match_http",
    "match_https",
    "match_smtp",
    "russia_censor",
    "seeded_censor_population",
    "southkorea_censor",
    "tmobile_box",
    "wifi_box",
]
