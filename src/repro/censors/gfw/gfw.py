"""The Great Firewall: five colocated per-protocol censorship boxes.

§6's finding, made executable: the GFW is *not* one monolithic DPI engine
but a set of per-application boxes, each individually tracking every TCP
connection until it recognizes its own protocol. All boxes observe every
packet (censorship is not port-based), and each reacts — or fails — with
its own network-stack bugs. A TCP-level server-side strategy therefore
confuses *some* boxes and not others, which is exactly why Table 2's
success rates are application-dependent.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from ...netsim import PathContext
from ...packets import Packet
from ..base import Censor, flow_key
from ..dpi import match_dns, match_ftp, match_http, match_https, match_smtp
from ..keywords import CHINA_KEYWORDS, KeywordSet
from .box import ProtocolBox
from .dnsudp import DNSUDPInjector
from .profiles import CHINA_PROFILES, BoxProfile

__all__ = ["GreatFirewall", "MATCHERS"]

#: DPI matcher per protocol box.
MATCHERS = {
    "dns": match_dns,
    "ftp": match_ftp,
    "http": match_http,
    "https": match_https,
    "smtp": match_smtp,
}


class GreatFirewall(Censor):
    """On-path multi-box censor modelling China's GFW.

    Args:
        rng: Randomness source (drives resync-entry and DPI-miss draws).
        keywords: Censored keyword sets (defaults to the paper's triggers).
        protocols: Which boxes to instantiate (default: all five). §6's
            experiments compare single-box and multi-box configurations.
        profiles: Profile overrides, for ablation experiments.
        validate_checksums: The real GFW does *not* validate TCP checksums
            (which is what makes insertion packets possible); setting this
            True is an ablation that ignores corrupted packets.
    """

    name = "gfw"

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        keywords: KeywordSet = CHINA_KEYWORDS,
        protocols: Optional[Iterable[str]] = None,
        profiles: Optional[Dict[str, BoxProfile]] = None,
        validate_checksums: bool = False,
        max_flows_per_box: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.validate_checksums = validate_checksums
        self.max_flows_per_box = max_flows_per_box
        rng = rng if rng is not None else random.Random(0)
        profiles = profiles if profiles is not None else CHINA_PROFILES
        names = list(protocols) if protocols is not None else list(CHINA_PROFILES)
        self.boxes: Dict[str, ProtocolBox] = {}
        for protocol in names:
            self.boxes[protocol] = ProtocolBox(
                profile=profiles[protocol],
                keywords=keywords,
                matcher=MATCHERS[protocol],
                rng=rng,
                censor=self,
                max_flows=max_flows_per_box,
            )
        #: Forged-response injection for DNS-over-UDP (§2.1 background).
        self.dns_udp = DNSUDPInjector(keywords, censor=self, rng=rng)

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        """All boxes observe every packet; the GFW always forwards (on-path)."""
        if self.validate_checksums and not packet.checksums_ok():
            return [packet]  # ablation: corrupted packets never inspected
        if packet.is_udp:
            self.dns_udp.observe(packet, direction, ctx)
            return [packet]
        # Compute the flow key once and hand it to all five boxes — they
        # would each derive the identical key from the same packet.
        key = flow_key(packet)
        for box in self.boxes.values():
            box.observe(packet, direction, ctx, key)
        return [packet]

    def box(self, protocol: str) -> ProtocolBox:
        """Access one protocol box (for assertions in experiments)."""
        return self.boxes[protocol]

    def reset(self) -> None:
        """Clear all per-flow state (keeps calibration and RNG stream)."""
        for box in self.boxes.values():
            box.flows.clear()
            box.residual.clear()
            box.censor_count = 0
        self.censorship_events = 0
