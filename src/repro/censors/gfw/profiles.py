"""Calibrated behaviour profiles for the GFW's per-protocol censorship boxes.

The paper's central §6 finding is that China runs a *separate censorship
box per application protocol*, each with its own network stack and bugs.
A :class:`BoxProfile` captures one box's quirks:

- which handshake anomalies put it into the **resynchronization state**
  (and with what probability) — the paper's refined resync model (§5.1):

  1. a payload on a non-SYN+ACK packet from the server → resync on the
     next SYN+ACK from the server or next ACK-flagged client packet
     (every protocol);
  2. a RST from the server → resync on the next client packet (every
     protocol *except HTTPS*);
  3. a SYN+ACK with a corrupted ack number → resync on the next client
     packet (*FTP only*);

- whether the box can reassemble TCP segments (the HTTP box can; the
  SMTP box cannot; the FTP box fails roughly half the time);
- its baseline DPI miss rate (Table 2's "No evasion" row);
- residual censorship (HTTP only, ~90 s).

Probabilities marked ``# calibrated`` are empirical constants fitted to
Table 2 where the paper itself reports the behaviour as probabilistic or
unexplained (e.g. "We do not yet understand the reason for the
improvement in success rate" for Strategy 5 on FTP). Everything else is
mechanism, and the Table 2 success rates *emerge* from the interaction of
these profiles with unmodified client TCP stacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "BoxProfile",
    "CHINA_PROFILES",
    "EVENT_RST",
    "EVENT_SYN",
    "EVENT_PAYLOAD_SYN",
    "EVENT_PAYLOAD_OTHER",
    "EVENT_CORRUPT_ACK",
    "EVENT_SYNACK_PAYLOAD",
    "RESYNC_ON_CLIENT",
    "RESYNC_ON_SYNACK_OR_CLIENT_ACK",
]

# Server-side handshake anomaly events a box can react to.
EVENT_RST = "rst"                        # RST from the server
EVENT_SYN = "syn"                        # bare SYN from the server (sim. open)
EVENT_PAYLOAD_SYN = "payload_syn"        # SYN carrying a payload
EVENT_PAYLOAD_OTHER = "payload_other"    # payload on FIN/ACK/null-flag packet
EVENT_CORRUPT_ACK = "corrupt_ack"        # SYN+ACK with a wrong ack number
EVENT_SYNACK_PAYLOAD = "synack_payload"  # SYN+ACK carrying a payload

# What the box resynchronizes on once in the resync state.
RESYNC_ON_CLIENT = "next_client_packet"
RESYNC_ON_SYNACK_OR_CLIENT_ACK = "server_synack_or_client_ack"

#: Resync capture target per triggering event (the paper's rules 1–3).
RESYNC_TARGETS = {
    EVENT_RST: RESYNC_ON_CLIENT,
    EVENT_SYN: RESYNC_ON_CLIENT,
    EVENT_PAYLOAD_SYN: RESYNC_ON_SYNACK_OR_CLIENT_ACK,
    EVENT_PAYLOAD_OTHER: RESYNC_ON_SYNACK_OR_CLIENT_ACK,
    EVENT_CORRUPT_ACK: RESYNC_ON_CLIENT,
    EVENT_SYNACK_PAYLOAD: RESYNC_ON_CLIENT,
}


@dataclass(frozen=True)
class BoxProfile:
    """Quirk profile for one GFW protocol box.

    Attributes:
        protocol: ``"dns"``, ``"ftp"``, ``"http"``, ``"https"``, ``"smtp"``.
        miss_prob: Per-flow probability the box misses a forbidden request
            outright (Table 2 "No evasion" row).
        event_probs: P(enter resync | anomaly event), per event.
        combo_probs: P(enter resync | event B observed after event A), for
            (A, B) pairs whose interaction the paper measured but could
            not explain mechanistically.
        reassembly_fail_prob: Per-flow probability the box cannot
            reassemble TCP segments (drives Strategy 8).
        residual_duration: Seconds of residual censorship after a censor
            event (HTTP only; 0 disables).
    """

    protocol: str
    miss_prob: float
    event_probs: Dict[str, float] = field(default_factory=dict)
    combo_probs: Dict[Tuple[str, str], float] = field(default_factory=dict)
    reassembly_fail_prob: float = 0.0
    residual_duration: float = 0.0


#: The five per-protocol boxes of the GFW, calibrated to Table 2.
CHINA_PROFILES: Dict[str, BoxProfile] = {
    "dns": BoxProfile(
        protocol="dns",
        miss_prob=0.0067,  # calibrated: 2% over 3 tries
        event_probs={
            EVENT_RST: 0.50,            # calibrated (Strategies 1, 7)
            EVENT_PAYLOAD_SYN: 0.45,    # calibrated (Strategy 2)
            EVENT_PAYLOAD_OTHER: 0.43,  # calibrated (Strategy 6)
            EVENT_CORRUPT_ACK: 0.017,   # calibrated (Strategy 4)
        },
        combo_probs={
            (EVENT_CORRUPT_ACK, EVENT_SYN): 0.079,             # calibrated (S3)
            (EVENT_CORRUPT_ACK, EVENT_SYNACK_PAYLOAD): 0.035,  # calibrated (S5)
        },
    ),
    "ftp": BoxProfile(
        protocol="ftp",
        miss_prob=0.03,
        event_probs={
            EVENT_RST: 0.51,            # calibrated (Strategy 1)
            EVENT_PAYLOAD_SYN: 0.34,    # calibrated (Strategy 2)
            EVENT_PAYLOAD_OTHER: 0.33,  # calibrated (Strategy 6)
            EVENT_CORRUPT_ACK: 0.31,    # rule 3 is FTP-only (Strategy 4)
        },
        combo_probs={
            (EVENT_CORRUPT_ACK, EVENT_SYN): 0.49,              # calibrated (S3)
            (EVENT_CORRUPT_ACK, EVENT_SYNACK_PAYLOAD): 0.956,  # calibrated (S5)
            (EVENT_RST, EVENT_CORRUPT_ACK): 0.54,              # calibrated (S7)
        },
        reassembly_fail_prob=0.455,  # "frequently incapable" (Strategy 8)
    ),
    "http": BoxProfile(
        protocol="http",
        miss_prob=0.03,
        event_probs={
            EVENT_RST: 0.52,            # ~50% resync entry (prior work + S1)
            EVENT_PAYLOAD_SYN: 0.525,   # calibrated (Strategy 2)
            EVENT_PAYLOAD_OTHER: 0.505, # calibrated (Strategy 6)
        },
        residual_duration=90.0,  # §4.2: ~90 s of HTTP residual censorship
    ),
    "https": BoxProfile(
        protocol="https",
        miss_prob=0.03,
        event_probs={
            # Rule 2 does NOT apply to HTTPS: a server RST never triggers
            # the resynchronization state (why Strategies 1 and 7 fail).
            EVENT_PAYLOAD_SYN: 0.536,   # calibrated (Strategy 2)
            EVENT_PAYLOAD_OTHER: 0.526, # calibrated (Strategy 6)
        },
        combo_probs={
            (EVENT_RST, EVENT_SYN): 0.11,  # calibrated (Strategy 1 residue)
        },
    ),
    "smtp": BoxProfile(
        protocol="smtp",
        miss_prob=0.26,  # the GFW's SMTP censorship is notably flaky
        event_probs={
            EVENT_RST: 0.57,            # calibrated (Strategies 1, 7)
            EVENT_PAYLOAD_SYN: 0.446,   # calibrated (Strategy 2)
            EVENT_PAYLOAD_OTHER: 0.39,  # calibrated (Strategy 6)
        },
        reassembly_fail_prob=1.0,  # the SMTP box cannot reassemble (S8: 100%)
    ),
}
