"""The GFW's classic DNS-over-UDP censorship: forged-response injection.

Background §2.1 of the paper: on-path censors "inject DNS lemon responses
to thwart address lookup". This box watches UDP port-53 queries for
censored names and races a forged A record back to the client; stub
resolvers accept the first answer, so lookups resolve to a bogus address.
This is exactly why the paper's DNS workload uses DNS-over-*TCP* — and
with the TCP path also censored (RST injection), server-side strategies
are what make DNS-over-TCP usable again.
"""

from __future__ import annotations

import random
from typing import Optional

from ...apps.dns import build_response, parse_query_name
from ...netsim import PathContext
from ...packets import Packet, make_udp_packet
from ..base import Censor
from ..keywords import KeywordSet

__all__ = ["DNSUDPInjector", "LEMON_ADDRESS"]

#: The bogus address forged responses point to.
LEMON_ADDRESS = "203.0.113.99"


class DNSUDPInjector:
    """Injects forged answers to censored UDP DNS queries.

    UDP DNS messages carry no length prefix; queries are re-framed with
    one so the shared RFC 1035 codec can parse them.
    """

    def __init__(
        self,
        keywords: KeywordSet,
        censor: Censor,
        rng: Optional[random.Random] = None,
        miss_prob: float = 0.001,
        lemon_address: str = LEMON_ADDRESS,
    ) -> None:
        self.keywords = keywords
        self.censor = censor
        self.rng = rng if rng is not None else random.Random(0)
        self.miss_prob = miss_prob
        self.lemon_address = lemon_address
        self.injections = 0

    def observe(self, packet: Packet, direction: str, ctx: PathContext) -> None:
        """Inspect one UDP packet; inject a lemon response on a match."""
        if direction != "c2s" or packet.udp is None or packet.dport != 53:
            return
        framed = len(packet.load).to_bytes(2, "big") + packet.load
        qname = parse_query_name(framed)
        if qname is None or qname not in self.keywords.dns_names:
            return
        if self.rng.random() < self.miss_prob:
            return
        txid = int.from_bytes(packet.load[:2], "big")
        forged = build_response(qname, txid, address=self.lemon_address)[2:]
        response = make_udp_packet(
            src=packet.dst,
            dst=packet.src,
            sport=packet.dport,
            dport=packet.sport,
            load=forged,
        )
        self.injections += 1
        self.censor.record_censorship(ctx, packet, "dns lemon response")
        ctx.inject(response, toward="client")
