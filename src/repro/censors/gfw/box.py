"""One GFW protocol censorship box: TCB tracking, resync state, DPI.

Implements the paper's refined model of the GFW's per-flow machinery:

- a TCB is created when the box sees a client SYN (the GFW explicitly
  determines which host initiated the connection and processes the two
  directions differently — §3);
- DPI runs only on client payload bytes whose sequence number matches the
  box's tracked expectation *exactly*; a one-byte desynchronization makes
  the forbidden request invisible (the bug behind Strategies 1–7);
- handshake anomalies from the *server* probabilistically put the box
  into a resynchronization state whose capture target depends on which
  anomaly triggered it (§5.1's rules 1–3);
- when the box resynchronizes on a client packet it assumes the sequence
  number has already been incremented — so a simultaneous-open SYN+ACK
  (whose sequence number has *not* advanced) desynchronizes it by one;
- a valid RST from the *client* deletes the TCB (the classic client-side
  TCB-teardown channel — which is why §3's client-side strategies worked
  from the client but their server-side analogs do not);
- boxes never fail closed: flows without a TCB are ignored.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from ...netsim import PathContext
from ...obs.metrics import Counter
from ...packets import Packet
from ...tcpstack.endpoint import seq_delta
from ..base import Censor, FlowKey, flow_key
from ..keywords import KeywordSet
from .profiles import (
    EVENT_CORRUPT_ACK,
    EVENT_PAYLOAD_OTHER,
    EVENT_PAYLOAD_SYN,
    EVENT_RST,
    EVENT_SYN,
    EVENT_SYNACK_PAYLOAD,
    RESYNC_ON_CLIENT,
    RESYNC_ON_SYNACK_OR_CLIENT_ACK,
    RESYNC_TARGETS,
    BoxProfile,
)

__all__ = ["ProtocolBox", "FlowTCB"]

MODE_TRACKING = "tracking"
MODE_RESYNC = "resync"
MODE_IGNORED = "ignored"

_WINDOW = 65536
_MOD = 1 << 32

#: §5.1 resync-state entries, by protocol box and the anomaly event that
#: fired. Deterministic: draws come from the trial's seeded RNG.
_RESYNC_EVENTS = Counter(
    "repro_gfw_resync_total",
    "GFW box resynchronization-state entries, by protocol and trigger",
    ("protocol", "event"),
)
#: Residual-censorship timers armed after a censorship verdict.
_RESIDUAL_TIMERS = Counter(
    "repro_gfw_residual_timers_total",
    "Residual-censorship timers armed on (server, port) endpoints",
    ("protocol",),
)

#: Verdict function: payload bytes -> None (not mine) / False / True.
Matcher = Callable[[bytes, KeywordSet], Optional[bool]]


class FlowTCB:
    """Per-flow transmission control block inside one censorship box."""

    def __init__(self, packet: Packet, miss: bool, can_reassemble: bool) -> None:
        self.client_ip = packet.src
        self.client_port = packet.sport
        self.server_ip = packet.dst
        self.server_port = packet.dport
        self.client_isn = packet.tcp.seq
        self.client_next = (packet.tcp.seq + 1) % _MOD
        self.server_next = 0
        self.mode = MODE_TRACKING
        self.resync_target = ""
        self.in_handshake = True
        self.anomalies: list = []
        self.miss = miss
        self.can_reassemble = can_reassemble
        self.buffer = bytearray()
        self.residual_kill = False

    def from_client(self, packet: Packet) -> bool:
        """Whether ``packet`` travels client-to-server for this flow."""
        return packet.src == self.client_ip and packet.sport == self.client_port


class ProtocolBox:
    """One of the GFW's per-protocol censorship engines.

    Attributes:
        profile: The box's calibrated quirk profile.
        keywords: Censored keyword sets for DPI.
        censor_count: Censorship actions taken this trial.
    """

    def __init__(
        self,
        profile: BoxProfile,
        keywords: KeywordSet,
        matcher: Matcher,
        rng: random.Random,
        censor: Censor,
        max_flows: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.keywords = keywords
        self.matcher = matcher
        self.rng = rng
        self.censor = censor
        #: TCB capacity: "maintaining a TCB on a per-flow basis is
        #: challenging at scale, and thus on-path censors naturally take
        #: several shortcuts" (§2.1). When bounded, the oldest flow is
        #: evicted — which makes state-exhaustion an evasion vector.
        self.max_flows = max_flows
        self.flows: Dict[FlowKey, FlowTCB] = {}
        self.residual: Dict[Tuple[str, int], float] = {}
        self.censor_count = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def observe(
        self,
        packet: Packet,
        direction: str,
        ctx: PathContext,
        key: Optional[FlowKey] = None,
    ) -> None:
        """Process one on-path packet (never drops; may inject).

        ``key`` lets a multi-box censor compute the flow key once per
        packet and share it; standalone callers may omit it.
        """
        if key is None:
            key = flow_key(packet)
        if direction == "c2s" and packet.tcp.is_syn:
            self._create_tcb(key, packet, ctx)
            return
        tcb = self.flows.get(key)
        if tcb is None:
            return  # no TCB: the box fails open
        if tcb.mode == MODE_IGNORED:
            return
        if tcb.from_client(packet):
            self._observe_client(tcb, packet, ctx)
        else:
            self._observe_server(tcb, packet, ctx)

    def _create_tcb(self, key: FlowKey, packet: Packet, ctx: PathContext) -> None:
        miss = self.rng.random() < self.profile.miss_prob
        can_reassemble = not (self.rng.random() < self.profile.reassembly_fail_prob)
        tcb = FlowTCB(packet, miss=miss, can_reassemble=can_reassemble)
        expiry = self.residual.get((packet.dst, packet.dport))
        if expiry is not None and ctx.now < expiry:
            tcb.residual_kill = True
        if self.max_flows is not None and key not in self.flows:
            while len(self.flows) >= self.max_flows:
                oldest = next(iter(self.flows))
                del self.flows[oldest]
                self.evictions += 1
        self.flows[key] = tcb

    # ------------------------------------------------------------------
    # Server-direction processing (anomaly events, resync capture)

    def _observe_server(self, tcb: FlowTCB, packet: Packet, ctx: PathContext) -> None:
        tcp = packet.tcp

        # Resync capture on a server SYN+ACK (rule 1's first option): the
        # box trusts the SYN+ACK's ack number as the client's next sequence
        # number — Strategy 6 hands it a corrupted one.
        if (
            tcb.mode == MODE_RESYNC
            and tcb.resync_target == RESYNC_ON_SYNACK_OR_CLIENT_ACK
            and tcp.is_synack
        ):
            tcb.client_next = tcp.ack
            tcb.server_next = (tcp.seq + 1) % _MOD
            tcb.mode = MODE_TRACKING
            return

        event = self._classify_server_event(tcb, packet)
        if event is None:
            self._track_server(tcb, packet)
            return
        fired = self._draw(event, tcb)
        tcb.anomalies.append(event)
        if fired and tcb.mode == MODE_TRACKING:
            tcb.mode = MODE_RESYNC
            tcb.resync_target = RESYNC_TARGETS[event]
            _RESYNC_EVENTS.inc(protocol=self.profile.protocol, event=event)

    def _classify_server_event(self, tcb: FlowTCB, packet: Packet) -> Optional[str]:
        tcp = packet.tcp
        if tcp.is_rst:
            return EVENT_RST
        if not tcb.in_handshake:
            # Once the client has sent data, ordinary server responses are
            # normal traffic, not handshake anomalies.
            return None
        if tcp.is_synack:
            if tcp.load:
                return EVENT_SYNACK_PAYLOAD
            expected_ack = (tcb.client_isn + 1) % _MOD
            if seq_delta(tcp.ack, expected_ack) != 0:
                return EVENT_CORRUPT_ACK
            return None
        if tcp.is_syn:
            return EVENT_PAYLOAD_SYN if tcp.load else EVENT_SYN
        if tcp.load:
            return EVENT_PAYLOAD_OTHER
        return None

    def _draw(self, event: str, tcb: FlowTCB) -> bool:
        probs = [self.profile.event_probs.get(event, 0.0)]
        probs.extend(
            self.profile.combo_probs.get((prior, event), 0.0)
            for prior in tcb.anomalies
        )
        return any(p > 0 and self.rng.random() < p for p in probs)

    def _track_server(self, tcb: FlowTCB, packet: Packet) -> None:
        tcp = packet.tcp
        if tcp.is_synack:
            tcb.server_next = (tcp.seq + 1) % _MOD
            return
        if tcp.load and seq_delta(tcp.seq, tcb.server_next) == 0:
            tcb.server_next = (tcb.server_next + len(tcp.load)) % _MOD
        if tcp.is_fin:
            tcb.server_next = (tcb.server_next + 1) % _MOD

    # ------------------------------------------------------------------
    # Client-direction processing (resync capture, teardown, DPI)

    def _observe_client(self, tcb: FlowTCB, packet: Packet, ctx: PathContext) -> None:
        tcp = packet.tcp

        if tcb.mode == MODE_RESYNC:
            qualifies = tcb.resync_target == RESYNC_ON_CLIENT or (
                tcb.resync_target == RESYNC_ON_SYNACK_OR_CLIENT_ACK and tcp.is_ack
            )
            if not qualifies:
                return
            # The resynchronization bug: the box takes the packet's sequence
            # number at face value, assuming any handshake increment already
            # happened. A simultaneous-open SYN+ACK (seq == ISN) or an
            # induced RST (seq == the corrupted ack) desynchronizes it.
            tcb.client_next = tcp.seq
            tcb.mode = MODE_TRACKING
            if tcp.is_rst:
                # The box synchronized onto this RST (Strategy 7's probe
                # confirms this); it does not also treat it as a teardown.
                return
            # Fall through: the capture packet itself is inspected below.

        if tcp.is_rst:
            if 0 <= seq_delta(tcp.seq, tcb.client_next) < _WINDOW:
                # Valid client RST: the box deletes the TCB and ignores the
                # flow from here on (the classic client-side teardown).
                tcb.mode = MODE_IGNORED
            return

        if tcb.residual_kill and tcp.is_ack:
            self._censor(tcb, packet, ctx, reason="residual censorship")
            return

        if tcp.is_ack:
            # A client packet with ACK set completes the handshake from the
            # box's perspective; later server payloads are normal traffic.
            tcb.in_handshake = False
        if not tcp.load:
            return
        if seq_delta(tcp.seq, tcb.client_next) != 0:
            return  # strict sequence matching: desynced data is invisible
        tcb.client_next = (tcb.client_next + len(tcp.load)) % _MOD
        if tcb.can_reassemble:
            tcb.buffer.extend(tcp.load)
            verdict = self.matcher(bytes(tcb.buffer), self.keywords)
        else:
            verdict = self.matcher(bytes(tcp.load), self.keywords)
        if verdict is True and not tcb.miss:
            self._censor(tcb, packet, ctx, reason=f"{self.profile.protocol} keyword")

    # ------------------------------------------------------------------

    def _censor(self, tcb: FlowTCB, packet: Packet, ctx: PathContext, reason: str) -> None:
        self.censor_count += 1
        self.censor.record_censorship(ctx, packet, reason)
        self.censor.inject_rst_pair(
            ctx,
            client_ip=tcb.client_ip,
            client_port=tcb.client_port,
            server_ip=tcb.server_ip,
            server_port=tcb.server_port,
            seq_to_client=tcb.server_next,
            seq_to_server=tcb.client_next,
            ack_to_client=tcb.client_next,
            ack_to_server=tcb.server_next,
        )
        tcb.mode = MODE_IGNORED
        if self.profile.residual_duration > 0:
            self.residual[(tcb.server_ip, tcb.server_port)] = (
                ctx.now + self.profile.residual_duration
            )
            _RESIDUAL_TIMERS.inc(protocol=self.profile.protocol)
