"""China's Great Firewall model: per-protocol boxes with resync bugs."""

from .box import FlowTCB, ProtocolBox
from .gfw import MATCHERS, GreatFirewall
from .profiles import (
    CHINA_PROFILES,
    EVENT_CORRUPT_ACK,
    EVENT_PAYLOAD_OTHER,
    EVENT_PAYLOAD_SYN,
    EVENT_RST,
    EVENT_SYN,
    EVENT_SYNACK_PAYLOAD,
    RESYNC_ON_CLIENT,
    RESYNC_ON_SYNACK_OR_CLIENT_ACK,
    BoxProfile,
)

__all__ = [
    "BoxProfile",
    "CHINA_PROFILES",
    "EVENT_CORRUPT_ACK",
    "EVENT_PAYLOAD_OTHER",
    "EVENT_PAYLOAD_SYN",
    "EVENT_RST",
    "EVENT_SYN",
    "EVENT_SYNACK_PAYLOAD",
    "FlowTCB",
    "GreatFirewall",
    "MATCHERS",
    "ProtocolBox",
    "RESYNC_ON_CLIENT",
    "RESYNC_ON_SYNACK_OR_CLIENT_ACK",
]
