"""Canned campaign specs for the repo's standard experiments.

Each preset is a ~10-line factory that expresses an existing evaluation
driver — the Table 1 censorship matrix, Table 2's success-rate grid, the
impairment robustness sweep — as a :class:`CampaignSpec`, with the exact
seed derivations those drivers use. Running the preset therefore
reproduces the driver's numbers bit-for-bit while gaining sharding,
checkpointing, and resume.

The :data:`PRESETS` registry maps CLI-facing names to factories; every
factory accepts ``trials``/``seed``/``shard_size`` keyword overrides.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..eval.reference import CHINA_PROTOCOLS
from ..eval.sweeps import DEFAULT_LOSS_GRID, ROBUSTNESS_CASES
from ..eval.table2 import CHINA_STRATEGY_NUMBERS, OTHER_CELLS
from .spec import CampaignSpec, CellSpec

__all__ = [
    "PRESETS",
    "coevolve_campaign",
    "evolution_campaign",
    "matrix_campaign",
    "robustness_campaign",
    "sni_campaign",
    "table2_campaign",
    "table2_china_campaign",
]


def table2_china_campaign(
    trials: int = 150,
    seed: int = 0,
    shard_size: int = 50,
    protocols: Sequence[str] = CHINA_PROTOCOLS,
) -> CampaignSpec:
    """Table 2's China block: strategies 0-8 across the five protocols.

    Cell seeds follow :func:`repro.eval.table2.generate_table2` exactly
    (``seed + number * 1_000_003``), so each cell's rate equals the
    direct ``success_rate`` measurement for the same arguments.
    """
    cells = [
        CellSpec.build(
            "china", protocol, number, trials=trials,
            seed=seed + number * 1_000_003, label=f"strategy-{number}",
        )
        for number in CHINA_STRATEGY_NUMBERS
        for protocol in protocols
    ]
    return CampaignSpec(
        name="table2-china", cells=cells, shard_size=shard_size,
        description="Table 2, China column: strategies 0-8 x protocols",
    )


def table2_campaign(trials: int = 150, seed: int = 0, shard_size: int = 50) -> CampaignSpec:
    """All of Table 2: the China block plus the deterministic-censor rows."""
    base = table2_china_campaign(trials=trials, seed=seed, shard_size=shard_size)
    cells = list(base.cells) + [
        CellSpec.build(
            country, protocol, number, trials=max(10, trials // 5),
            seed=seed + number * 31, label=f"strategy-{number}",
        )
        for country, number, protocol in OTHER_CELLS
    ]
    return CampaignSpec(
        name="table2", cells=cells, shard_size=shard_size,
        description="Table 2, all countries",
    )


def matrix_campaign(trials: int = 5, seed: int = 0, shard_size: int = 25) -> CampaignSpec:
    """Table 1's censorship matrix: no-evasion probes per (country, protocol).

    ``trials`` plays the matrix driver's ``probes`` role; a cell is
    "censored" when any of its trials was censored or failed.
    """
    from ..eval.matrix import ALL_PROTOCOLS, TABLE1_MATRIX
    from ..eval.runner import censored_workload

    cells: List[CellSpec] = []
    for country, info in TABLE1_MATRIX.items():
        for protocol in ALL_PROTOCOLS:
            source = country if protocol in info["protocols"] else "china"
            cells.append(
                CellSpec.build(
                    country, protocol, None, trials=trials, seed=seed,
                    options={"workload": censored_workload(source, protocol)},
                )
            )
    return CampaignSpec(
        name="matrix", cells=cells, shard_size=shard_size,
        description="Table 1 censorship matrix (no-evasion probes)",
    )


def robustness_campaign(
    trials: int = 20,
    seed: int = 0,
    shard_size: int = 20,
    net_seed: Optional[int] = None,
    loss_rates: Sequence[float] = DEFAULT_LOSS_GRID,
) -> CampaignSpec:
    """The impairment robustness sweep: flagship strategy per country
    measured at each per-link loss rate (mirrors
    :func:`repro.eval.sweeps.impairment_robustness_sweep`)."""
    cells = [
        CellSpec.build(
            country, ROBUSTNESS_CASES[country][0], ROBUSTNESS_CASES[country][1],
            trials=trials, seed=seed,
            impairment={"loss": loss} if loss else None,
            net_seed=net_seed if loss else None,
            label=f"loss-{loss:g}",
        )
        for country in sorted(ROBUSTNESS_CASES)
        for loss in loss_rates
    ]
    return CampaignSpec(
        name="robustness", cells=cells, shard_size=shard_size,
        description="Success-vs-loss robustness sweep",
    )


def sni_campaign(trials: int = 30, seed: int = 0, shard_size: int = 30) -> CampaignSpec:
    """The SNI-era matrix: record-level strategies vs TLS-metadata censors.

    Cell seeds follow :func:`repro.eval.sni_matrix.sni_matrix` exactly
    (``seed + column_index * 1_000_003``), so each cell's rate equals
    the direct grid measurement for the same arguments.
    """
    from ..eval.sni_matrix import SNI_COLUMNS, SNI_COUNTRIES, esni_workload

    cells: List[CellSpec] = []
    for country in SNI_COUNTRIES:
        for index, column in enumerate(SNI_COLUMNS):
            number = None
            options = {}
            if column == "esni":
                options["workload"] = esni_workload(country)
            elif column != "baseline":
                number = int(column)
            cells.append(
                CellSpec.build(
                    country, "https", number, trials=trials,
                    seed=seed + index * 1_000_003, options=options,
                    label=f"sni-{column}",
                )
            )
    return CampaignSpec(
        name="sni", cells=cells, shard_size=shard_size,
        description="SNI-era matrix: record-level strategies vs SNI censors",
    )


def evolution_campaign(
    strategies: Sequence[object],
    country: str,
    protocol: str,
    trials: int = 50,
    seed: int = 0,
    shard_size: int = 50,
) -> CampaignSpec:
    """Validate GA-discovered strategies at campaign scale.

    Takes the strategies an evolution run surfaced — e.g. the
    ``hall_of_fame`` texts of a :class:`~repro.core.evolution.GAResult` —
    and builds one cell per strategy against the censor it was trained
    on, with the same ``trial_seed`` fan-out the fitness evaluator uses.
    Duplicate behaviours are collapsed on canonical strategy text, so a
    hall of fame full of respellings validates each behaviour once.

    Unlike the :data:`PRESETS` entries this factory needs arguments (the
    strategies under test), so it is called from code — see
    ``docs/evolution.md`` — rather than from ``campaign run``.
    """
    from ..core import Strategy

    cells: List[CellSpec] = []
    seen = set()
    for strategy in strategies:
        parsed = (
            strategy if isinstance(strategy, Strategy) else Strategy.parse(str(strategy))
        )
        canonical = parsed.canonical()
        text = None if canonical.is_noop() else str(canonical)
        if text in seen:
            continue
        seen.add(text)
        cells.append(
            CellSpec.build(
                country, protocol, text, trials=trials, seed=seed,
                label=f"evolved-{len(cells)}",
            )
        )
    return CampaignSpec(
        name="evolution",
        cells=cells,
        shard_size=shard_size,
        description=f"GA-discovered strategies vs {country}/{protocol}",
    )


def coevolve_campaign(
    trials: int = 20,
    seed: int = 1,
    shard_size: int = 20,
    country: str = "china",
    epochs: int = 2,
) -> CampaignSpec:
    """Frontier validation for a co-evolution run, at campaign scale.

    Replays a small deterministic arms race
    (:func:`~repro.core.evolution.run_coevolution`) at spec-build time,
    then emits one cell per (paper strategy, censor) pair: every
    applicable paper strategy against the calibrated baseline and
    against each censor in the final adapted hall of fame (the adapted
    genomes ride in the cell's ``censor_params`` option). Because the
    search is seeded, rebuilding the spec — including ``--resume`` after
    an interruption — regenerates the identical cell list.
    """
    from ..core.evolution import (
        COEVOLVE_PROTOCOLS,
        CoevolveConfig,
        run_coevolution,
    )

    config = CoevolveConfig(
        epochs=epochs,
        strategy_population=8,
        censor_population=4,
        trials=1,
        frontier_trials=1,
        seed=seed,
    )
    result = run_coevolution(country, config=config)
    protocol = COEVOLVE_PROTOCOLS[country]
    opponents = [("baseline", None)] + [
        (f"adapted-{index}", entry["genome"]["params"])
        for index, entry in enumerate(result.final_censor_hof)
    ]
    cells: List[CellSpec] = []
    for entry in result.frontier:
        for name, params in opponents:
            options = {} if params is None else {"censor_params": params}
            cells.append(
                CellSpec.build(
                    country, protocol, entry.number, trials=trials,
                    seed=seed + len(cells) * 1_000_003, options=options,
                    label=f"s{entry.number}-{name}",
                )
            )
    return CampaignSpec(
        name="coevolve", cells=cells, shard_size=shard_size,
        description=f"Robustness frontier validation vs adapted {country} censors",
    )


#: CLI-facing preset registry: name -> CampaignSpec factory.
PRESETS: Dict[str, Callable[..., CampaignSpec]] = {
    "coevolve": coevolve_campaign,
    "matrix": matrix_campaign,
    "robustness": robustness_campaign,
    "sni": sni_campaign,
    "table2": table2_campaign,
    "table2-china": table2_china_campaign,
}
