"""The campaign runner: checkpointed, resumable shard execution.

:func:`run_campaign` drives one :class:`~repro.campaign.spec.CampaignSpec`
through the existing :class:`~repro.runtime.TrialExecutor`, one shard at
a time, checkpointing into a :class:`~repro.campaign.ledger.CampaignLedger`
after **every** shard. The loop is idempotent by construction:

- a shard whose content-addressed result file exists and verifies is
  skipped, never re-run — so killing the process at any point and
  re-running with ``resume=True`` continues exactly where it stopped;
- shard execution is deterministic (specs carry their own seeds), so a
  resumed run's shard files are byte-identical to an uninterrupted
  run's, and the final ``results.jsonl``/``report.json`` are too;
- a failing shard is retried up to ``retries`` extra times before the
  campaign aborts — with all completed shards safely on disk.

Telemetry: every shard runs under its own metric registry and its
**deterministic** snapshot is stored in the shard file; at finalize the
per-shard snapshots are folded with the snapshot-merge algebra
(:func:`repro.obs.merge_snapshots`) into one campaign-level view that is
independent of sharding, worker count, and interruption history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..obs import metrics as obs_metrics
from ..obs.export import deterministic_view
from ..obs.metrics import merge_snapshots
from ..runtime import TrialExecutor
from ..runtime.cache import result_payload
from .ledger import CampaignLedger
from .spec import CampaignError, CampaignSpec, Shard

__all__ = ["CampaignResult", "CellResult", "run_campaign", "format_campaign"]


@dataclass
class CellResult:
    """Aggregated outcome of one campaign cell."""

    index: int
    country: Optional[str]
    protocol: str
    server_strategy: Optional[str]
    label: Optional[str]
    trials: int = 0
    successes: int = 0
    censored: int = 0

    @property
    def rate(self) -> float:
        """Fraction of the cell's trials that evaded censorship."""
        return self.successes / self.trials if self.trials else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (one row of ``report.json``)."""
        out: Dict[str, Any] = {
            "index": self.index,
            "country": self.country,
            "protocol": self.protocol,
            "server_strategy": self.server_strategy,
            "trials": self.trials,
            "successes": self.successes,
            "censored": self.censored,
            "rate": self.rate,
        }
        if self.label is not None:
            out["label"] = self.label
        return out


@dataclass
class CampaignResult:
    """What one :func:`run_campaign` invocation did and found.

    Attributes:
        spec: The campaign that ran.
        out_dir: The ledger directory.
        shards_total: Shards in the whole campaign.
        shards_run: Shards executed by *this* invocation.
        shards_skipped: Shards this invocation found already done.
        shards_pending: Shards still missing after this invocation
            (non-zero only for ``--shard I/N`` partial runs).
        finalized: Whether ``results.jsonl``/``report.json`` were written.
        cells: Per-cell aggregates (populated only when finalized).
        metrics: Merged deterministic metric snapshot (when finalized).
    """

    spec: CampaignSpec
    out_dir: Path
    shards_total: int = 0
    shards_run: int = 0
    shards_skipped: int = 0
    shards_pending: int = 0
    finalized: bool = False
    cells: List[CellResult] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)


def _run_shard(
    executor: TrialExecutor,
    shard: Shard,
    retries: int,
    ledger: CampaignLedger,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Execute one shard (with the retry budget); returns (results, metrics).

    Each attempt runs under a fresh metric registry so a failed attempt
    cannot leak partial counts into the stored snapshot.
    """
    specs = [trial.spec for trial in shard.trials]
    last_error: Optional[BaseException] = None
    for attempt in range(retries + 1):
        executor.metrics = obs_metrics.MetricsRegistry()
        try:
            results = executor.run_batch(specs)
        except Exception as exc:  # worker death, trial bug, ...
            last_error = exc
            ledger.journal(
                "shard_attempt_failed",
                shard=shard.index,
                hash=shard.shard_hash,
                attempt=attempt,
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        payloads = [result_payload(result) for result in results]
        snapshot = deterministic_view(executor.metrics.snapshot())
        return payloads, snapshot
    ledger.journal(
        "shard_failed",
        shard=shard.index,
        hash=shard.shard_hash,
        attempts=retries + 1,
        error=f"{type(last_error).__name__}: {last_error}",
    )
    raise CampaignError(
        f"shard {shard.index} failed after {retries + 1} attempt(s): {last_error}"
    )


def _finalize(
    spec: CampaignSpec,
    shards: List[Shard],
    entries: Dict[int, Dict[str, Any]],
    ledger: CampaignLedger,
) -> Tuple[List[CellResult], Dict[str, Any]]:
    """Fold all shard entries into ``results.jsonl`` + ``report.json``.

    Everything written here is a pure function of the shard files, which
    are themselves pure functions of the spec — so finalizing after any
    interruption history produces identical bytes.
    """
    cells = [
        CellResult(
            index=i,
            country=cell.country,
            protocol=cell.protocol,
            server_strategy=cell.server_strategy,
            label=cell.label,
        )
        for i, cell in enumerate(spec.cells)
    ]
    lines: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    for shard in shards:
        entry = entries[shard.index]
        snapshots.append(entry.get("metrics", {}))
        for trial, payload in zip(shard.trials, entry["results"]):
            cell = cells[trial.cell_index]
            cell.trials += 1
            cell.successes += bool(payload["succeeded"])
            cell.censored += bool(payload["censored"])
            lines.append(
                {
                    "seq": trial.index,
                    "cell": trial.cell_index,
                    "shard": shard.index,
                    "spec": trial.spec.spec_hash(),
                    "seed": trial.spec.seed,
                    "country": trial.spec.country,
                    "protocol": trial.spec.protocol,
                    "outcome": payload["outcome"],
                    "succeeded": bool(payload["succeeded"]),
                    "censored": bool(payload["censored"]),
                }
            )
    merged = merge_snapshots(*snapshots)
    ledger.write_results(lines)
    ledger.write_report(
        {
            "campaign": spec.campaign_hash(),
            "name": spec.name,
            "shards": len(shards),
            "shard_size": spec.shard_size,
            "trials": len(lines),
            "cells": [cell.as_dict() for cell in cells],
            "metrics": merged,
        }
    )
    return cells, merged


def run_campaign(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    resume: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    workers: int = 1,
    cache=None,
    retries: int = 2,
    max_shards: Optional[int] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run (or continue) ``spec`` into the campaign directory ``out_dir``.

    Args:
        spec: The campaign to run.
        out_dir: Ledger directory (created if needed).
        resume: Continue an existing ledger; without it an initialized
            directory is refused. Idempotent: completed shards are
            recognized by content hash and skipped.
        shard: Optional ``(I, N)`` selector — this invocation runs only
            shard indices congruent to ``I-1`` mod ``N``, so a campaign
            splits across ``N`` machines without coordination.
        workers: Worker processes for the underlying executor.
        cache: Optional trial-result cache (as in
            :class:`~repro.runtime.TrialExecutor`). The ledger itself is
            the campaign's checkpoint; a cache only dedups *across*
            campaigns. Note that a warm cache changes the
            executed-vs-cached split in stored shard metrics.
        retries: Extra attempts per failing shard before aborting.
        max_shards: Process at most this many shards, then checkpoint
            and return (``finalized=False``); rerun with ``resume`` to
            continue. This is the programmatic "kill at a shard
            boundary".
        echo: Optional progress sink (e.g. ``print``).

    Returns a :class:`CampaignResult`. The final ``results.jsonl`` and
    ``report.json`` are written only once every shard of the whole
    campaign verifies on disk — for multi-machine runs, copy the
    ``shards/`` files into one directory and re-run with ``resume``.
    """
    say = echo if echo is not None else (lambda _line: None)
    ledger = CampaignLedger(out_dir)
    ledger.initialize(spec, resume=resume)
    shards = spec.shards()
    mine = (
        spec.select_shards(shards, shard[0], shard[1])
        if shard is not None
        else list(shards)
    )
    result = CampaignResult(spec=spec, out_dir=Path(out_dir), shards_total=len(shards))
    ledger.journal(
        "campaign_started",
        campaign=spec.campaign_hash(),
        name=spec.name,
        shards=len(shards),
        selected=len(mine),
        trials=spec.total_trials,
        resume=bool(resume),
        shard=None if shard is None else f"{shard[0]}/{shard[1]}",
        workers=workers,
    )

    processed = 0
    with TrialExecutor(workers=workers, cache=cache, collect_metrics=True) as executor:
        for item in mine:
            if max_shards is not None and processed >= max_shards:
                ledger.journal("campaign_paused", after_shards=processed)
                say(f"paused after {processed} shard(s)")
                break
            if ledger.load_shard(item) is not None:
                result.shards_skipped += 1
                ledger.journal("shard_skipped", shard=item.index, hash=item.shard_hash)
                processed += 1
                continue
            payloads, snapshot = _run_shard(executor, item, retries, ledger)
            ledger.store_shard(item, payloads, snapshot)
            result.shards_run += 1
            processed += 1
            successes = sum(bool(p["succeeded"]) for p in payloads)
            ledger.journal(
                "shard_done",
                shard=item.index,
                hash=item.shard_hash,
                trials=len(payloads),
                successes=successes,
            )
            say(
                f"shard {item.index + 1}/{len(shards)}: "
                f"{successes}/{len(payloads)} trials succeeded"
            )

    entries = ledger.completed_shards(shards)
    result.shards_pending = len(shards) - len(entries)
    if result.shards_pending == 0:
        result.cells, result.metrics = _finalize(spec, shards, entries, ledger)
        result.finalized = True
        ledger.journal(
            "campaign_done",
            campaign=spec.campaign_hash(),
            trials=spec.total_trials,
        )
        say(f"campaign complete: {spec.total_trials} trials, {len(shards)} shards")
    else:
        ledger.journal("campaign_pending", missing_shards=result.shards_pending)
        say(
            f"{result.shards_pending} shard(s) still pending "
            "(run the remaining selectors, then finalize with --resume)"
        )
    return result


def format_campaign(result: CampaignResult) -> str:
    """Human-readable summary of a campaign run (the CLI's output)."""
    lines = [
        f"campaign {result.spec.name}: "
        f"{result.shards_run} shard(s) run, {result.shards_skipped} skipped, "
        f"{result.shards_pending} pending (of {result.shards_total})"
    ]
    if result.finalized:
        lines.append(f"ledger: {result.out_dir / CampaignLedger.RESULTS_FILE}")
        lines.append(f"report: {result.out_dir / CampaignLedger.REPORT_FILE}")
        for cell in result.cells:
            strategy = cell.label or cell.server_strategy or "no evasion"
            lines.append(
                f"  {str(cell.country):<12} {cell.protocol:<6} {strategy:<40} "
                f"{cell.successes:>4}/{cell.trials:<4} ({cell.rate * 100:.0f}%)"
            )
    return "\n".join(lines)
