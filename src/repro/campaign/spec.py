"""Declarative campaign descriptions: a grid of cells, expanded to shards.

A measurement *campaign* is what the paper actually ran for Tables 1–2:
thousands of trials per (country x protocol x strategy) cell, collected
over days. A :class:`CampaignSpec` captures such a run as plain JSON-able
data — a named list of :class:`CellSpec` grid cells plus sharding
parameters — and expands it **deterministically** into an ordered list of
:class:`~repro.runtime.TrialSpec` shards:

- cell order and per-cell trial order are exactly the listed order, so
  the expansion (and therefore every content hash) is a pure function of
  the spec;
- per-trial seeds derive from each cell's base seed via
  :func:`repro.runtime.trial_seed`, the same derivation ``success_rate``
  uses — a campaign cell reproduces the corresponding direct
  measurement bit-for-bit;
- shards are fixed-size chunks of the expansion, each content-addressed
  by a SHA-256 over the campaign hash, the shard index, and its trial
  spec hashes (see :func:`Shard.shard_hash`).

The content addresses are what make campaigns restartable: a completed
shard's result file is keyed by its hash, so a resumed run recognizes
and skips finished work *by construction* (see
:mod:`repro.campaign.ledger`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..runtime import TrialSpec, trial_seed
from ..runtime.cache import canonical_sha
from ..runtime.spec import SpecError, impairment_dict

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "CampaignTrial",
    "CellSpec",
    "DEFAULT_SHARD_SIZE",
    "Shard",
]

#: Default trials per shard. Small enough that a kill loses little work,
#: large enough that per-shard checkpoint I/O stays negligible.
DEFAULT_SHARD_SIZE = 50

#: Countries a cell may name (``None`` means "no censor").
_KNOWN_COUNTRIES = (
    "china", "india", "iran", "kazakhstan", "southkorea", "russia",
)
#: Protocols the trial runner speaks.
_KNOWN_PROTOCOLS = ("dns", "ftp", "http", "https", "smtp")


class CampaignError(ValueError):
    """Raised when a campaign spec is malformed or cannot be expanded."""


def _strategy_dsl(value: Any) -> Optional[str]:
    """Canonical strategy DSL text for a cell's strategy field.

    Accepts ``None``/``0`` (no evasion), a paper strategy number (1-11,
    resolved to its deployed DSL), or a Geneva DSL string (validated by
    parsing it).
    """
    if value is None or value == 0:
        return None
    if isinstance(value, bool):
        raise CampaignError(f"bad strategy {value!r}")
    if isinstance(value, int):
        from ..core import SERVER_STRATEGIES, deployed_strategy

        if value not in SERVER_STRATEGIES:
            valid = f"{min(SERVER_STRATEGIES)}-{max(SERVER_STRATEGIES)}"
            raise CampaignError(
                f"unknown strategy number {value} (valid: {valid})"
            )
        return str(deployed_strategy(value))
    if isinstance(value, str):
        from ..core import Strategy

        try:
            Strategy.parse(value)
        except Exception as exc:
            raise CampaignError(f"unparseable strategy {value!r}: {exc}") from None
        return value
    raise CampaignError(f"bad strategy {value!r}")


@dataclass
class CellSpec:
    """One grid cell: a (country, protocol, strategy) point measured with
    ``trials`` independent seeded trials.

    Attributes:
        country: Censor country, or ``None`` for an uncensored path.
        protocol: Application protocol (``"http"``, ``"dns"``, ...).
        server_strategy: Canonical server-side strategy DSL, or ``None``.
        trials: Number of independent trials for this cell (>= 1).
        seed: Cell base seed; trial ``i`` runs with
            ``trial_seed(seed, i)``.
        client_strategy: Client-side strategy DSL, or ``None``.
        impairment: Canonical network-impairment dict, or ``None``.
        net_seed: Optional base seed for the impairment stream, fanned
            out per trial exactly like ``success_rate``'s ``net_seed``.
        options: Extra JSON-able :class:`~repro.eval.runner.Trial`
            keyword arguments (workloads, hop placement, ...).
        label: Optional human-readable name carried into reports.
    """

    country: Optional[str]
    protocol: str
    server_strategy: Optional[str] = None
    trials: int = 1
    seed: int = 0
    client_strategy: Optional[str] = None
    impairment: Optional[Dict[str, Any]] = None
    net_seed: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    @classmethod
    def build(
        cls,
        country: Optional[str],
        protocol: str,
        server_strategy: Any = None,
        trials: int = 1,
        seed: int = 0,
        client_strategy: Any = None,
        impairment: Any = None,
        net_seed: Optional[int] = None,
        options: Optional[Dict[str, Any]] = None,
        label: Optional[str] = None,
    ) -> "CellSpec":
        """Validate and canonicalize ``run_trial``-style cell arguments."""
        if country is not None and country not in _KNOWN_COUNTRIES:
            raise CampaignError(
                f"unknown country {country!r} (valid: {', '.join(_KNOWN_COUNTRIES)}, null)"
            )
        if protocol not in _KNOWN_PROTOCOLS:
            raise CampaignError(
                f"unknown protocol {protocol!r} (valid: {', '.join(_KNOWN_PROTOCOLS)})"
            )
        if not isinstance(trials, int) or isinstance(trials, bool) or trials < 1:
            raise CampaignError(f"cell trials must be a positive int, got {trials!r}")
        try:
            canonical_impairment = impairment_dict(impairment)
        except SpecError as exc:
            raise CampaignError(str(exc)) from None
        return cls(
            country=country,
            protocol=protocol,
            server_strategy=_strategy_dsl(server_strategy),
            trials=trials,
            seed=int(seed),
            client_strategy=_strategy_dsl(client_strategy),
            impairment=canonical_impairment,
            net_seed=None if net_seed is None else int(net_seed),
            options=dict(options or {}),
            label=label,
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellSpec":
        """Build a cell from its JSON form (unknown keys rejected)."""
        if not isinstance(data, dict):
            raise CampaignError(f"cell must be an object, got {data!r}")
        known = {
            "country", "protocol", "server_strategy", "trials", "seed",
            "client_strategy", "impairment", "net_seed", "options", "label",
        }
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"unknown cell keys: {', '.join(sorted(unknown))}")
        if "protocol" not in data:
            raise CampaignError("cell is missing required key 'protocol'")
        return cls.build(
            country=data.get("country"),
            protocol=data["protocol"],
            server_strategy=data.get("server_strategy"),
            trials=data.get("trials", 1),
            seed=data.get("seed", 0),
            client_strategy=data.get("client_strategy"),
            impairment=data.get("impairment"),
            net_seed=data.get("net_seed"),
            options=data.get("options"),
            label=data.get("label"),
        )

    def as_dict(self) -> Dict[str, Any]:
        """Canonical minimal JSON form (``None``/empty fields omitted)."""
        out: Dict[str, Any] = {
            "country": self.country,
            "protocol": self.protocol,
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.server_strategy is not None:
            out["server_strategy"] = self.server_strategy
        if self.client_strategy is not None:
            out["client_strategy"] = self.client_strategy
        if self.impairment is not None:
            out["impairment"] = self.impairment
        if self.net_seed is not None:
            out["net_seed"] = self.net_seed
        if self.options:
            out["options"] = self.options
        if self.label is not None:
            out["label"] = self.label
        return out

    def trial_specs(self) -> List[TrialSpec]:
        """Expand this cell into its ``trials`` ordered trial specs."""
        specs: List[TrialSpec] = []
        for index in range(self.trials):
            extra = dict(self.options)
            if self.net_seed is not None:
                extra["net_seed"] = trial_seed(self.net_seed, index)
            try:
                specs.append(
                    TrialSpec.build(
                        self.country,
                        self.protocol,
                        self.server_strategy,
                        seed=trial_seed(self.seed, index),
                        client_strategy=self.client_strategy,
                        impairment=self.impairment,
                        **extra,
                    )
                )
            except SpecError as exc:
                raise CampaignError(f"cell cannot be expanded: {exc}") from None
        return specs


@dataclass(frozen=True)
class CampaignTrial:
    """One expanded trial: its global index, owning cell, and spec."""

    index: int
    cell_index: int
    spec: TrialSpec


@dataclass(frozen=True)
class Shard:
    """A fixed-size chunk of a campaign's trial expansion.

    The shard hash covers the campaign hash, the shard index, and every
    member trial's spec hash, so it changes whenever the spec, the
    sharding, or any contained trial does — which is exactly the
    invariant resume safety rests on.
    """

    index: int
    campaign_hash: str
    trials: Tuple[CampaignTrial, ...]

    @property
    def spec_hashes(self) -> List[str]:
        """Content hashes of the member trial specs, in order."""
        return [trial.spec.spec_hash() for trial in self.trials]

    @property
    def shard_hash(self) -> str:
        """Content address of this shard (SHA-256, hex)."""
        return canonical_sha(
            {
                "campaign": self.campaign_hash,
                "index": self.index,
                "specs": self.spec_hashes,
            }
        )


@dataclass
class CampaignSpec:
    """A whole measurement campaign as declarative, hashable data.

    Attributes:
        name: Campaign name (reports, ledger metadata).
        cells: Ordered grid cells (see :class:`CellSpec`).
        shard_size: Trials per shard (the checkpoint granularity).
        description: Optional free-text description.
    """

    name: str
    cells: List[CellSpec] = field(default_factory=list)
    shard_size: int = DEFAULT_SHARD_SIZE
    description: str = ""

    def __post_init__(self) -> None:
        """Validate campaign-level invariants."""
        if not self.name or not isinstance(self.name, str):
            raise CampaignError("campaign needs a non-empty string name")
        if not isinstance(self.shard_size, int) or self.shard_size < 1:
            raise CampaignError(
                f"shard_size must be a positive int, got {self.shard_size!r}"
            )

    # ------------------------------------------------------------------
    # Construction / serialization

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        """Build a campaign from its JSON form."""
        if not isinstance(data, dict):
            raise CampaignError(f"campaign spec must be an object, got {data!r}")
        unknown = set(data) - {"name", "cells", "shard_size", "description"}
        if unknown:
            raise CampaignError(
                f"unknown campaign keys: {', '.join(sorted(unknown))}"
            )
        cells_data = data.get("cells", [])
        if not isinstance(cells_data, list) or not cells_data:
            raise CampaignError("campaign needs a non-empty 'cells' list")
        return cls(
            name=data.get("name", ""),
            cells=[CellSpec.from_dict(cell) for cell in cells_data],
            shard_size=data.get("shard_size", DEFAULT_SHARD_SIZE),
            description=data.get("description", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a campaign from JSON text."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CampaignError(f"invalid campaign JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a campaign spec from a JSON file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise CampaignError(f"cannot read campaign spec {path}: {exc}") from None
        return cls.from_json(text)

    def as_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (the campaign hash is taken over this)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "shard_size": self.shard_size,
            "cells": [cell.as_dict() for cell in self.cells],
        }
        if self.description:
            out["description"] = self.description
        return out

    def canonical_key(self) -> str:
        """Deterministic string form: sorted-key compact JSON."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def campaign_hash(self) -> str:
        """Content address of this campaign (SHA-256 of the canonical key)."""
        return canonical_sha(self.as_dict())

    # ------------------------------------------------------------------
    # Expansion

    @property
    def total_trials(self) -> int:
        """Number of trials the campaign expands into."""
        return sum(cell.trials for cell in self.cells)

    def expand(self) -> List[CampaignTrial]:
        """Deterministic full expansion: cells in order, trials in order."""
        trials: List[CampaignTrial] = []
        for cell_index, cell in enumerate(self.cells):
            for spec in cell.trial_specs():
                trials.append(CampaignTrial(len(trials), cell_index, spec))
        return trials

    def shards(self) -> List[Shard]:
        """Chunk the expansion into content-addressed fixed-size shards."""
        digest = self.campaign_hash()
        expansion = self.expand()
        out: List[Shard] = []
        for start in range(0, len(expansion), self.shard_size):
            chunk = tuple(expansion[start : start + self.shard_size])
            out.append(Shard(len(out), digest, chunk))
        return out

    def select_shards(
        self, shards: Sequence[Shard], shard_index: int, shard_count: int
    ) -> List[Shard]:
        """The subset of ``shards`` machine ``shard_index`` of
        ``shard_count`` is responsible for (round-robin striping).

        ``shard_index`` is 1-based, matching the CLI's ``--shard I/N``.
        """
        if shard_count < 1 or not 1 <= shard_index <= shard_count:
            raise CampaignError(
                f"bad shard selector {shard_index}/{shard_count}: "
                "need 1 <= I <= N"
            )
        return [s for s in shards if s.index % shard_count == shard_index - 1]
