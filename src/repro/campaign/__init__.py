"""Campaign orchestration: sharded, checkpointed, resumable experiment runs.

The paper's headline numbers came from week-long measurement campaigns;
this package makes such runs durable in the reproduction. A declarative
:class:`CampaignSpec` names a grid of (country x protocol x strategy x
trials x impairment) cells, expands deterministically into
content-addressed shards of :class:`~repro.runtime.TrialSpec`s, and
:func:`run_campaign` executes them through the existing
:class:`~repro.runtime.TrialExecutor` with a durable on-disk ledger —
checkpointing after every shard, so a killed run resumes exactly where
it stopped, and one campaign can split across machines with
``--shard I/N``.

See ``docs/campaigns.md`` for the spec format, the ledger layout, the
resume semantics, and the multi-machine recipe.
"""

from .ledger import CampaignLedger, LedgerError
from .presets import PRESETS, coevolve_campaign, evolution_campaign
from .runner import CampaignResult, CellResult, format_campaign, run_campaign
from .spec import (
    DEFAULT_SHARD_SIZE,
    CampaignError,
    CampaignSpec,
    CampaignTrial,
    CellSpec,
    Shard,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "PRESETS",
    "CampaignError",
    "CampaignLedger",
    "CampaignResult",
    "CampaignSpec",
    "CampaignTrial",
    "CellResult",
    "CellSpec",
    "LedgerError",
    "coevolve_campaign",
    "evolution_campaign",
    "Shard",
    "format_campaign",
    "run_campaign",
]
