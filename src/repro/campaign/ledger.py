"""The durable on-disk campaign ledger: journal + content-addressed shards.

A campaign directory is the single source of truth for a run:

    DIR/
      campaign.json      the canonical spec + its hash, written once at
                         initialization; later runs must present the
                         identical spec (hash equality) to touch the dir
      ledger.jsonl       append-only journal of run events (started /
                         shard_done / shard_skipped / shard_failed /
                         campaign_done), each stamped with wall time —
                         an *audit log*, not the recovery mechanism
      shards/<hash>.json one file per completed shard, content-addressed
                         by the shard hash and self-verifying (stored
                         spec hashes + a result checksum), written
                         atomically (tmp + rename)
      results.jsonl      final per-trial ledger in global trial order,
                         fully deterministic (no wall-clock fields)
      report.json        per-cell success rates + the merged
                         deterministic metrics snapshot

Crash safety comes from the shard files, not the journal: a shard is
"done" exactly when its content-addressed file exists and verifies, so
resume never trusts a journal line that a kill may have half-written —
it re-derives completion from content. A corrupt or tampered shard file
fails verification and is simply re-executed, mirroring the result
cache's poison handling.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..runtime.cache import canonical_sha
from .spec import CampaignSpec, Shard

__all__ = ["CampaignLedger", "LedgerError"]


class LedgerError(RuntimeError):
    """Raised when a campaign directory cannot be (re)used safely."""


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` via a same-directory rename (atomic)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class CampaignLedger:
    """Filesystem layer of one campaign run (see module docstring)."""

    SPEC_FILE = "campaign.json"
    JOURNAL_FILE = "ledger.jsonl"
    SHARDS_DIR = "shards"
    RESULTS_FILE = "results.jsonl"
    REPORT_FILE = "report.json"

    def __init__(self, directory: Union[str, Path]) -> None:
        self.root = Path(directory)
        self.poisoned = 0

    # ------------------------------------------------------------------
    # Initialization / identity

    @property
    def spec_path(self) -> Path:
        """Path of the pinned canonical spec."""
        return self.root / self.SPEC_FILE

    @property
    def journal_path(self) -> Path:
        """Path of the append-only journal."""
        return self.root / self.JOURNAL_FILE

    @property
    def shards_dir(self) -> Path:
        """Directory holding content-addressed shard result files."""
        return self.root / self.SHARDS_DIR

    @property
    def results_path(self) -> Path:
        """Path of the final deterministic per-trial ledger."""
        return self.root / self.RESULTS_FILE

    @property
    def report_path(self) -> Path:
        """Path of the final campaign report."""
        return self.root / self.REPORT_FILE

    def initialize(self, spec: CampaignSpec, resume: bool = False) -> None:
        """Create or re-open the campaign directory for ``spec``.

        A fresh directory is stamped with the canonical spec. An already
        initialized directory is only re-opened when ``resume`` is set
        *and* the stored spec hash matches — running a different
        campaign into an existing ledger is always an error, because
        shard addresses would silently stop lining up.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(exist_ok=True)
        digest = spec.campaign_hash()
        if self.spec_path.exists():
            try:
                stored = json.loads(self.spec_path.read_text())
            except ValueError as exc:
                raise LedgerError(
                    f"{self.spec_path} is not valid JSON: {exc}"
                ) from None
            stored_hash = stored.get("campaign_hash")
            if stored_hash != digest:
                raise LedgerError(
                    f"{self.root} already holds campaign {stored_hash}, "
                    f"refusing to run campaign {digest} into it"
                )
            if not resume:
                raise LedgerError(
                    f"{self.root} is already initialized; pass --resume to "
                    "continue it"
                )
            return
        if not resume and self.journal_path.exists():
            raise LedgerError(
                f"{self.root} contains a journal but no campaign.json; "
                "refusing to reuse it"
            )
        _atomic_write(
            self.spec_path,
            json.dumps(
                {"campaign_hash": digest, "spec": spec.as_dict()},
                sort_keys=True,
                indent=2,
            )
            + "\n",
        )

    @classmethod
    def load_spec(cls, directory: Union[str, Path]) -> CampaignSpec:
        """Recover the pinned :class:`CampaignSpec` from a campaign dir."""
        path = Path(directory) / cls.SPEC_FILE
        try:
            stored = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise LedgerError(f"cannot load campaign spec from {path}: {exc}")
        return CampaignSpec.from_dict(stored.get("spec", {}))

    # ------------------------------------------------------------------
    # Journal (audit log)

    def journal(self, event: str, **fields: Any) -> None:
        """Append one journal record (stamped with wall time)."""
        record: Dict[str, Any] = {"event": event}
        record.update(fields)
        record["wall"] = time.time()
        with open(self.journal_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def journal_records(self) -> List[Dict[str, Any]]:
        """Parse the journal, skipping a torn (half-written) final line."""
        if not self.journal_path.exists():
            return []
        records: List[Dict[str, Any]] = []
        with open(self.journal_path) as handle:
            for line in handle:
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue  # torn write from a kill mid-append
        return records

    # ------------------------------------------------------------------
    # Shard results (the actual checkpoints)

    def shard_path(self, shard: Shard) -> Path:
        """Content-addressed result path for ``shard``."""
        return self.shards_dir / f"{shard.shard_hash}.json"

    def store_shard(
        self,
        shard: Shard,
        results: List[Dict[str, Any]],
        metrics: Dict[str, Any],
    ) -> Path:
        """Atomically persist one completed shard's results.

        ``results`` are trace-free result payloads in shard trial order;
        ``metrics`` is the shard's deterministic metric snapshot. The
        entry embeds the member spec hashes and a content checksum so a
        later load can verify it end-to-end.
        """
        body = {"results": results, "metrics": metrics}
        entry = {
            "campaign": shard.campaign_hash,
            "shard": shard.index,
            "hash": shard.shard_hash,
            "specs": shard.spec_hashes,
            "cells": [trial.cell_index for trial in shard.trials],
            "content_sha": canonical_sha(body),
        }
        entry.update(body)
        path = self.shard_path(shard)
        _atomic_write(path, json.dumps(entry, sort_keys=True))
        return path

    def load_shard(self, shard: Shard) -> Optional[Dict[str, Any]]:
        """Load and verify a shard's stored results, or ``None``.

        ``None`` means "not done" — the file is missing, unreadable,
        addressed under the wrong hash, or fails its content checksum.
        A verification failure bumps :attr:`poisoned` (and the caller
        re-executes the shard) rather than serving bad results.
        """
        path = self.shard_path(shard)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            if path.exists():
                self.poisoned += 1
            return None
        if (
            entry.get("hash") != shard.shard_hash
            or entry.get("specs") != shard.spec_hashes
            or entry.get("content_sha")
            != canonical_sha(
                {"results": entry.get("results"), "metrics": entry.get("metrics")}
            )
        ):
            self.poisoned += 1
            return None
        results = entry.get("results")
        if not isinstance(results, list) or len(results) != len(shard.trials):
            self.poisoned += 1
            return None
        return entry

    def completed_shards(self, shards: Iterable[Shard]) -> Dict[int, Dict[str, Any]]:
        """Map shard index -> verified stored entry, for every done shard."""
        done: Dict[int, Dict[str, Any]] = {}
        for shard in shards:
            entry = self.load_shard(shard)
            if entry is not None:
                done[shard.index] = entry
        return done

    # ------------------------------------------------------------------
    # Final artifacts

    def write_results(self, lines: Iterable[Dict[str, Any]]) -> int:
        """Write ``results.jsonl`` (deterministic; returns record count)."""
        count = 0
        tmp = self.results_path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            for record in lines:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                )
                count += 1
        os.replace(tmp, self.results_path)
        return count

    def write_report(self, report: Dict[str, Any]) -> Path:
        """Write ``report.json`` (sorted keys, deterministic bytes)."""
        _atomic_write(
            self.report_path, json.dumps(report, sort_keys=True, indent=2) + "\n"
        )
        return self.report_path
