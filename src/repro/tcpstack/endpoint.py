"""TCP endpoint state machine.

Implements enough of RFC 793 (plus documented modern-stack deviations) to
reproduce every client/server behaviour the paper's strategies rely on:

- the three-way handshake and **simultaneous open**, including the detail
  that a simultaneous-open SYN+ACK reuses the original SYN's sequence
  number (the GFW resynchronization bug exploited by Strategies 1–3);
- RSTs without ACK being ignored in SYN_SENT (all modern OSes);
- a RST answer to a SYN+ACK with an unacceptable ack number, with the
  client remaining in SYN_SENT (the "induced RST" of Strategies 3–7);
- per-OS handling of payloads on SYN+ACK packets (§7);
- window-driven segmentation of the first request flight (Strategy 8);
- retransmission with exponential backoff and a connection-failure signal
  (how blackholing censors like Iran's manifest to applications).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from ..obs.metrics import Counter
from ..packets import Packet, make_tcp_packet
from . import states
from .personality import OSPersonality

__all__ = ["TCPEndpoint", "seq_delta"]

_MOD = 1 << 32

#: Endpoint-level TCP events, labeled by OS personality. All
#: deterministic: they depend only on the seeded simulation.
_TCP_RETRANSMITS = Counter(
    "repro_tcp_retransmits_total",
    "Segments retransmitted after an RTO fire, by personality and state",
    ("personality", "state"),
)
_TCP_RTO_BACKOFFS = Counter(
    "repro_tcp_rto_backoffs_total",
    "RTO timer fires with unacknowledged data (each doubles the backoff)",
    ("personality",),
)
_TCP_FAILURES = Counter(
    "repro_tcp_failures_total",
    "Connections declared failed, by personality and reason",
    ("personality", "reason"),
)
_TCP_DUP_SEGMENTS = Counter(
    "repro_tcp_dup_segments_total",
    "Fully-duplicate data segments discarded by receivers",
    ("personality",),
)

#: Base retransmission timeout (virtual seconds) — the fallback when a
#: personality does not override :attr:`OSPersonality.rto`.
DEFAULT_RTO = 0.4
#: Legacy flat retransmission cap. Per-state limits now come from the
#: personality (``syn_retries`` / ``synack_retries`` / ``data_retries``);
#: this remains the floor older callers may still reference.
MAX_RETRANSMITS = 4


def seq_delta(a: int, b: int) -> int:
    """Signed difference ``a - b`` in 32-bit sequence space."""
    return ((a - b + (_MOD >> 1)) % _MOD) - (_MOD >> 1)


class TCPEndpoint:
    """One TCP connection endpoint attached to a host.

    The host supplies the wire (``host.transmit``), the virtual clock
    (``host.scheduler``) and randomness (``host.rng``). Applications set
    the ``on_*`` callbacks and use :meth:`send` / :meth:`close`.
    """

    def __init__(
        self,
        host,
        local_port: int,
        remote_ip: str,
        remote_port: int,
        personality: OSPersonality,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.personality = personality
        self.rng = rng if rng is not None else host.rng

        self.state = states.CLOSED
        self.iss = 0
        self.irs = 0
        self.snd_una = 0
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.snd_wnd = 0
        self.peer_wscale: Optional[int] = None
        self.peer_mss = 536

        # Outgoing byte stream; _stream_base is the sequence number of
        # _stream[0] (iss + 1 once the handshake assigns it).
        self._stream = bytearray()
        self._stream_base = 0
        self._fin_queued = False
        self._fin_sent = False

        # Reassembly for incoming data.
        self._ooo: Dict[int, bytes] = {}
        self.received = bytearray()

        self._retx_timer = None
        self._retx_count = 0

        # Server-initiated connection migration (SNI-era evasion): when a
        # passive open sets this, the endpoint accepts the SYN silently
        # and withholds its SYN+ACK for this many virtual seconds — as if
        # the listener had re-bound the flow to a fresh socket and only
        # then answered. A censor whose per-flow tracking window anchors
        # at the first SYN gives up before the handshake ever completes.
        self.accept_delay = 0.0
        self._migrating = False

        # Application callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_remote_close: Optional[Callable[[], None]] = None
        self.on_reset: Optional[Callable[[], None]] = None
        self.on_failure: Optional[Callable[[str], None]] = None

        # Observable diagnostics.
        self.established = False
        self.was_reset = False
        self.failure_reason: Optional[str] = None
        self.simultaneous_open_used = False
        self.retransmits_sent = 0
        self.dup_segments_discarded = 0

    # ------------------------------------------------------------------
    # Public API

    def connect(self) -> None:
        """Start an active open (send SYN)."""
        self.iss = self.rng.randrange(1, _MOD)
        self.snd_una = self.iss
        self.snd_nxt = (self.iss + 1) % _MOD
        self._stream_base = self.snd_nxt
        self.state = states.SYN_SENT
        self._emit("S", seq=self.iss, ack=0, options=self._syn_options())
        self._arm_retransmit()

    def accept_syn(self, packet: Packet) -> None:
        """Perform a passive open in response to ``packet`` (a SYN)."""
        self.irs = packet.tcp.seq
        self.rcv_nxt = (packet.tcp.seq + 1) % _MOD
        self._consume_peer_options(packet)
        self.snd_wnd = packet.tcp.window
        self.iss = self.rng.randrange(1, _MOD)
        self.snd_una = self.iss
        self.snd_nxt = (self.iss + 1) % _MOD
        self._stream_base = self.snd_nxt
        self.state = states.SYN_RCVD
        if self.accept_delay > 0:
            # Connection migration: go dark until the re-bound socket
            # answers. Client SYN retransmissions in the interim get no
            # reply either (see _handle_syn_rcvd).
            self._migrating = True
            self.host.scheduler.schedule(self.accept_delay, self._finish_migration)
            return
        self._send_synack()
        self._arm_retransmit()

    def _finish_migration(self) -> None:
        """The migrated socket comes online: emit the withheld SYN+ACK."""
        if self.state != states.SYN_RCVD:
            return
        self._migrating = False
        self._send_synack()
        self._arm_retransmit()

    def send(self, data: bytes) -> None:
        """Queue application data for transmission."""
        if self._fin_queued:
            raise RuntimeError("cannot send after close()")
        self._stream.extend(data)
        if self.state == states.ESTABLISHED:
            self._flush()

    def close(self) -> None:
        """Close the sending side once queued data has been transmitted."""
        self._fin_queued = True
        if self.state in (states.ESTABLISHED, states.CLOSE_WAIT):
            self._flush()

    def abort(self) -> None:
        """Send a RST and drop the connection immediately."""
        if self.state not in (states.CLOSED, states.LISTEN):
            self._emit("RA", seq=self.snd_nxt, ack=self.rcv_nxt)
        self._teardown()

    # ------------------------------------------------------------------
    # Segment processing

    def handle_segment(self, packet: Packet) -> None:
        """Process an incoming segment according to the current state."""
        if self.state == states.CLOSED:
            return
        if self.state == states.SYN_SENT:
            self._handle_syn_sent(packet)
            return
        if self.state == states.SYN_RCVD:
            self._handle_syn_rcvd(packet)
            return
        self._handle_synchronized(packet)

    # -- SYN_SENT ------------------------------------------------------

    def _handle_syn_sent(self, packet: Packet) -> None:
        tcp = packet.tcp
        acceptable_ack = tcp.is_ack and seq_delta(tcp.ack, self.snd_nxt) == 0

        if tcp.is_rst:
            if not tcp.is_ack:
                # RFC 793 would tear the connection down, but every modern
                # OS the paper tested ignores a RST without ACK here.
                if self.personality.ignores_rst_without_ack_in_synsent:
                    return
                self._reset()
                return
            if acceptable_ack:
                self._reset()
            return

        if tcp.is_synack:
            if not acceptable_ack:
                # Induced RST: answer with RST seq=SEG.ACK, stay in SYN_SENT.
                if self.personality.rst_on_bad_synack_ack:
                    self._emit("R", seq=tcp.ack, ack=0)
                return
            self._learn_peer_isn(packet)
            self.snd_una = self.snd_nxt
            self._handle_synack_payload(packet)
            self._send_ack()
            self._enter_established()
            self._flush()
            return

        if tcp.is_syn:
            # Simultaneous open: reply with SYN+ACK whose sequence number
            # is still ISS (not incremented) — the detail the GFW's
            # resynchronization state mishandles.
            if not self.personality.supports_simultaneous_open:
                return
            self.simultaneous_open_used = True
            self._learn_peer_isn(packet)
            self.state = states.SYN_RCVD
            self._send_synack()
            self._arm_retransmit()
            return

        # Anything without SYN or RST is dropped in SYN_SENT (RFC 793).

    def _learn_peer_isn(self, packet: Packet) -> None:
        self.irs = packet.tcp.seq
        self.rcv_nxt = (packet.tcp.seq + 1) % _MOD
        self._consume_peer_options(packet)
        self.snd_wnd = packet.tcp.window

    def _handle_synack_payload(self, packet: Packet) -> None:
        load = packet.tcp.load
        if not load:
            return
        if self.personality.ignores_synack_payload:
            # Linux-derived stacks discard data on a SYN+ACK entirely.
            return
        # Windows/macOS behaviour: the payload is consumed into the stream,
        # desynchronizing the client from the server's real send sequence
        # and corrupting what the application reads (§7).
        self.rcv_nxt = (self.rcv_nxt + len(load)) % _MOD
        self._deliver(load)

    # -- SYN_RCVD ------------------------------------------------------

    def _handle_syn_rcvd(self, packet: Packet) -> None:
        tcp = packet.tcp

        if tcp.is_rst:
            if self._rst_acceptable(tcp.seq):
                self._reset()
            return

        if tcp.is_syn and not tcp.is_ack:
            # Duplicate of the SYN we already answered (or a payload-bearing
            # copy, as in Strategy 2): acknowledge the current sequence.
            # A migrating endpoint stays dark — the old socket is gone.
            if seq_delta(tcp.seq, self.irs) == 0 and not self._migrating:
                self._send_ack()
            return

        if not tcp.is_ack:
            return

        if seq_delta(tcp.ack, self.snd_nxt) != 0:
            # Unacceptable ACK in SYN_RCVD elicits a RST (RFC 793).
            self._emit("R", seq=tcp.ack, ack=0)
            return

        self.snd_una = self.snd_nxt
        self.snd_wnd = tcp.window
        self._enter_established()
        if tcp.has_flag("S"):
            # Peer's simultaneous-open SYN+ACK: acknowledge it so the peer
            # can finish its handshake.
            self._send_ack()
        if tcp.load or tcp.is_fin:
            self._process_data(packet)
        self._flush()

    # -- Synchronized states -------------------------------------------

    def _handle_synchronized(self, packet: Packet) -> None:
        tcp = packet.tcp

        if tcp.is_rst:
            if self._rst_acceptable(tcp.seq):
                self._reset()
            return

        if tcp.has_flag("S"):
            # Duplicate SYN (or SYN+ACK retransmission) in a synchronized
            # state: challenge ACK, and never deliver its payload.
            self._send_ack()
            return

        if not tcp.is_ack:
            # Null-flag and FIN-only segments carry no ACK and are dropped
            # (Strategies 6 and 11 rely on censors not knowing this).
            return

        self._process_ack(tcp.ack, tcp.window)
        if tcp.load or tcp.is_fin:
            self._process_data(packet)

    def _process_ack(self, ack: int, window: int) -> None:
        if seq_delta(ack, self.snd_una) > 0 and seq_delta(ack, self.snd_nxt) <= 0:
            self.snd_una = ack
            self._retx_count = 0
            if self._fin_sent and seq_delta(self.snd_una, self.snd_nxt) == 0:
                if self.state == states.FIN_WAIT_1:
                    self.state = states.FIN_WAIT_2
                elif self.state == states.LAST_ACK:
                    self._teardown()
                    return
            if seq_delta(self.snd_una, self.snd_nxt) == 0:
                self._cancel_retransmit()
            else:
                self._arm_retransmit()
        self.snd_wnd = window
        self._flush()

    def _process_data(self, packet: Packet) -> None:
        tcp = packet.tcp
        seq = tcp.seq
        data = tcp.load
        fin = tcp.is_fin

        if data:
            offset = seq_delta(self.rcv_nxt, seq)
            if offset < 0:
                # Future data: stash out-of-order, ask for what we expect.
                self._ooo[seq % _MOD] = bytes(data)
                self._send_ack()
                return
            if offset > 0:
                if offset >= len(data):
                    # Entirely old bytes — a retransmission (or an
                    # impairment duplicate) of data already delivered.
                    # Discard, but still ACK below so the sender stops.
                    self.dup_segments_discarded += 1
                    _TCP_DUP_SEGMENTS.inc(personality=self.personality.name)
                    data = b""
                else:
                    data = data[offset:]
            if data:
                self.rcv_nxt = (self.rcv_nxt + len(data)) % _MOD

        fin_in_order = False
        if fin:
            expected_fin_seq = (seq + len(tcp.load)) % _MOD
            fin_in_order = seq_delta(expected_fin_seq, self.rcv_nxt) == 0
            if fin_in_order:
                self.rcv_nxt = (self.rcv_nxt + 1) % _MOD
                if self.state == states.ESTABLISHED:
                    self.state = states.CLOSE_WAIT
                elif self.state in (states.FIN_WAIT_1, states.FIN_WAIT_2):
                    self.state = states.TIME_WAIT

        # ACK before delivering to the application, so app-triggered
        # responses appear after the ACK on the wire (as real stacks do).
        self._send_ack()
        if data:
            self._deliver(data)
            self._drain_ooo()
        if fin_in_order and self.on_remote_close:
            self.on_remote_close()

    def _drain_ooo(self) -> None:
        while self._ooo:
            data = self._ooo.pop(self.rcv_nxt % _MOD, None)
            if data is None:
                return
            self.rcv_nxt = (self.rcv_nxt + len(data)) % _MOD
            self._deliver(data)

    def _deliver(self, data: bytes) -> None:
        self.received.extend(data)
        if self.on_data:
            self.on_data(data)

    # ------------------------------------------------------------------
    # Transmission

    def _syn_options(self) -> list:
        options = [("mss", self.personality.mss)]
        if self.personality.window_scale:
            options.append(("wscale", self.personality.window_scale))
        options.append(("sackok", None))
        return options

    def _send_synack(self) -> None:
        self._emit(
            "SA", seq=self.iss, ack=self.rcv_nxt, options=self._syn_options()
        )

    def _send_ack(self) -> None:
        self._emit("A", seq=self.snd_nxt, ack=self.rcv_nxt)

    def _emit(
        self,
        flags: str,
        seq: int,
        ack: int,
        load: bytes = b"",
        options: Optional[list] = None,
    ) -> None:
        packet = make_tcp_packet(
            src=self.host.ip,
            dst=self.remote_ip,
            sport=self.local_port,
            dport=self.remote_port,
            flags=flags,
            seq=seq % _MOD,
            ack=ack % _MOD,
            load=load,
            window=self.personality.default_window & 0xFFFF,
            options=options,
        )
        self.host.transmit(packet)

    def _effective_send_window(self) -> int:
        shift = self.peer_wscale or 0
        return self.snd_wnd << shift

    def _flush(self) -> None:
        if self.state not in (states.ESTABLISHED, states.CLOSE_WAIT):
            return
        sent_any = False
        while True:
            pending_offset = seq_delta(self.snd_nxt, self._stream_base)
            pending = len(self._stream) - pending_offset
            if pending_offset < 0 or pending <= 0:
                break
            inflight = seq_delta(self.snd_nxt, self.snd_una)
            available = self._effective_send_window() - inflight
            if available <= 0:
                if self._effective_send_window() == 0 and inflight == 0:
                    # Zero-window persist probe: send one byte so the peer
                    # re-advertises its window (RFC 1122 §4.2.2.17).
                    available = 1
                else:
                    break
            size = min(self.peer_mss, available, pending)
            chunk = bytes(self._stream[pending_offset : pending_offset + size])
            self._emit("PA", seq=self.snd_nxt, ack=self.rcv_nxt, load=chunk)
            self.snd_nxt = (self.snd_nxt + size) % _MOD
            sent_any = True
        if self._fin_queued and not self._fin_sent and self._all_data_sent():
            self._emit("FA", seq=self.snd_nxt, ack=self.rcv_nxt)
            self.snd_nxt = (self.snd_nxt + 1) % _MOD
            self._fin_sent = True
            self.state = (
                states.LAST_ACK if self.state == states.CLOSE_WAIT else states.FIN_WAIT_1
            )
            sent_any = True
        if sent_any or seq_delta(self.snd_nxt, self.snd_una) > 0:
            self._arm_retransmit()

    def _all_data_sent(self) -> bool:
        pending_offset = seq_delta(self.snd_nxt, self._stream_base)
        return pending_offset >= len(self._stream)

    # ------------------------------------------------------------------
    # Retransmission

    def _arm_retransmit(self) -> None:
        self._cancel_retransmit()
        rto = getattr(self.personality, "rto", DEFAULT_RTO)
        delay = rto * (2 ** min(self._retx_count, 6))
        self._retx_timer = self.host.scheduler.schedule(delay, self._on_rto)

    def _cancel_retransmit(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None

    def _retx_limit(self) -> int:
        """Retransmission budget for the current state (per-OS)."""
        if self.state == states.SYN_SENT:
            return self.personality.syn_retries
        if self.state == states.SYN_RCVD:
            return self.personality.synack_retries
        return self.personality.data_retries

    def _on_rto(self) -> None:
        self._retx_timer = None
        if self.state == states.CLOSED:
            return
        nothing_outstanding = (
            self.state in (states.ESTABLISHED, states.CLOSE_WAIT)
            and seq_delta(self.snd_nxt, self.snd_una) == 0
        )
        if nothing_outstanding:
            return
        self._retx_count += 1
        _TCP_RTO_BACKOFFS.inc(personality=self.personality.name)
        if self._retx_count > self._retx_limit():
            self._fail("retransmission limit exceeded")
            return
        self.retransmits_sent += 1
        _TCP_RETRANSMITS.inc(personality=self.personality.name, state=self.state)
        if self.state == states.SYN_SENT:
            self._emit("S", seq=self.iss, ack=0, options=self._syn_options())
        elif self.state == states.SYN_RCVD:
            self._send_synack()
        else:
            self._retransmit_data()
        self._arm_retransmit()

    def _retransmit_data(self) -> None:
        start = seq_delta(self.snd_una, self._stream_base)
        end = seq_delta(self.snd_nxt, self._stream_base)
        if self._fin_sent:
            end -= 1
        if start < 0 or end <= start:
            if self._fin_sent:
                self._emit("FA", seq=(self.snd_nxt - 1) % _MOD, ack=self.rcv_nxt)
            return
        size = min(self.peer_mss, end - start)
        chunk = bytes(self._stream[start : start + size])
        self._emit("PA", seq=self.snd_una, ack=self.rcv_nxt, load=chunk)

    # ------------------------------------------------------------------
    # Teardown helpers

    def _rst_acceptable(self, seq: int) -> bool:
        window = self.personality.default_window
        delta = seq_delta(seq, self.rcv_nxt)
        return 0 <= delta < max(window, 1)

    def _enter_established(self) -> None:
        if self.established:
            return
        self.state = states.ESTABLISHED
        self.established = True
        self._cancel_retransmit()
        self._retx_count = 0
        if self.on_established:
            self.on_established()

    def _reset(self) -> None:
        self.was_reset = True
        self._teardown()
        if self.on_reset:
            self.on_reset()

    def _fail(self, reason: str) -> None:
        _TCP_FAILURES.inc(personality=self.personality.name, reason=reason)
        self.failure_reason = reason
        self._teardown()
        if self.on_failure:
            self.on_failure(reason)

    def _teardown(self) -> None:
        self.state = states.CLOSED
        self._cancel_retransmit()
        self.host.forget_endpoint(self)

    # ------------------------------------------------------------------

    def _consume_peer_options(self, packet: Packet) -> None:
        mss = packet.tcp.get_option("mss")
        if mss:
            self.peer_mss = int(mss)
        wscale = packet.tcp.get_option("wscale")
        self.peer_wscale = int(wscale) if wscale is not None else None

    def __repr__(self) -> str:
        return (
            f"TCPEndpoint({self.host.ip}:{self.local_port} <-> "
            f"{self.remote_ip}:{self.remote_port} {self.state})"
        )
