"""A simulated host: NIC-level packet handling plus TCP connection demux.

A :class:`Host` owns TCP endpoints, validates checksums on ingress (which
is why checksum-corrupted "insertion packets" are seen by censors but not
by end hosts), and passes traffic through pluggable packet *filters* — the
hook point where a Geneva strategy engine (server- or client-side) or an
experiment instrumentation shim is installed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..netsim import Network, Scheduler
from ..packets import Packet
from .endpoint import TCPEndpoint
from .personality import OSPersonality, SERVER_PERSONALITY

__all__ = ["Host", "PacketFilter"]

#: A packet filter consumes one packet and returns the packets to forward
#: in its place (possibly none, possibly several).
PacketFilter = Callable[[Packet], List[Packet]]

_EPHEMERAL_BASE = 40000


class Host:
    """One end host attached to the simulated network.

    Attributes:
        name: Label used in traces.
        ip: The host's IPv4 address.
        personality: Default TCP personality for endpoints on this host.
        outbound_filters: Filters applied, in order, to every packet the
            TCP stack emits before it reaches the wire (Geneva server-side
            strategies live here on the server).
        inbound_filters: Filters applied to every wire packet after
            checksum validation and before TCP processing.
        accept_hooks: Hooks invoked with each passive-open endpoint
            before the listener sees it (and before the SYN+ACK is
            sent) — where server-side connection migration sets
            :attr:`TCPEndpoint.accept_delay`.
        flow_rng_provider: Optional hook mapping a passive-open demux key
            ``(remote_ip, remote_port, local_port)`` to the RNG the new
            endpoint should draw from (``None`` → the host RNG, the
            historical behaviour). Fleet mode uses this to give every
            client flow on a shared server host its own seeded stream,
            so one flow's ISN/TLS draws never perturb another's.
        on_endpoint_closed: Optional hook invoked with each endpoint as
            it is removed from the demux table — the recycling signal
            fleet mode uses to prune per-connection application state.
    """

    def __init__(
        self,
        name: str,
        ip: str,
        scheduler: Scheduler,
        rng: random.Random,
        personality: OSPersonality = SERVER_PERSONALITY,
    ) -> None:
        from ..packets.ipv6 import canonical_ip

        self.name = name
        self.ip = canonical_ip(ip)
        self.scheduler = scheduler
        self.rng = rng
        self.personality = personality
        self.network: Optional[Network] = None
        self.outbound_filters: List[PacketFilter] = []
        self.inbound_filters: List[PacketFilter] = []
        self.accept_hooks: List[Callable[[TCPEndpoint], None]] = []
        self._endpoints: Dict[Tuple[str, int, int], TCPEndpoint] = {}
        self._listeners: Dict[int, Callable[[TCPEndpoint], None]] = {}
        self._udp_binds: Dict[int, Callable[[Packet], None]] = {}
        self._next_ephemeral = _EPHEMERAL_BASE + rng.randrange(1000)
        self.flow_rng_provider: Optional[
            Callable[[Tuple[str, int, int]], Optional[random.Random]]
        ] = None
        self.on_endpoint_closed: Optional[Callable[[TCPEndpoint], None]] = None

    # ------------------------------------------------------------------
    # Wiring

    def attach(self, network: Network) -> None:
        """Connect this host to a network (called by experiment setup)."""
        self.network = network

    def new_port(self) -> int:
        """Allocate a fresh ephemeral port."""
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    # ------------------------------------------------------------------
    # Connection management

    def open_connection(
        self,
        remote_ip: str,
        remote_port: int,
        local_port: Optional[int] = None,
        personality: Optional[OSPersonality] = None,
    ) -> TCPEndpoint:
        """Create an endpoint for an active open (does not send yet).

        Call :meth:`TCPEndpoint.connect` on the result once application
        callbacks are wired.
        """
        from ..packets.ipv6 import canonical_ip

        port = local_port if local_port is not None else self.new_port()
        endpoint = TCPEndpoint(
            host=self,
            local_port=port,
            remote_ip=canonical_ip(remote_ip),
            remote_port=remote_port,
            personality=personality or self.personality,
        )
        self._endpoints[(endpoint.remote_ip, remote_port, port)] = endpoint
        return endpoint

    def listen(self, port: int, on_accept: Callable[[TCPEndpoint], None]) -> None:
        """Accept incoming connections on ``port``.

        ``on_accept`` is invoked with the new endpoint *before* the
        SYN+ACK is sent, so applications can wire callbacks first.
        """
        self._listeners[port] = on_accept

    # ------------------------------------------------------------------
    # UDP

    def udp_bind(self, port: int, callback: Callable[[Packet], None]) -> None:
        """Receive UDP datagrams addressed to ``port``."""
        self._udp_binds[port] = callback

    def send_udp(
        self, dst: str, dport: int, payload: bytes, sport: Optional[int] = None
    ) -> int:
        """Send a UDP datagram; returns the source port used."""
        from ..packets import make_udp_packet

        port = sport if sport is not None else self.new_port()
        self.transmit(make_udp_packet(self.ip, dst, port, dport, load=payload))
        return port

    def forget_endpoint(self, endpoint: TCPEndpoint) -> None:
        """Remove a closed endpoint from the demux table."""
        key = (endpoint.remote_ip, endpoint.remote_port, endpoint.local_port)
        if self._endpoints.get(key) is endpoint:
            del self._endpoints[key]
            if self.on_endpoint_closed is not None:
                self.on_endpoint_closed(endpoint)

    def endpoints(self) -> List[TCPEndpoint]:
        """All currently-tracked endpoints (open connections)."""
        return list(self._endpoints.values())

    # ------------------------------------------------------------------
    # Wire interface

    def transmit(self, packet: Packet) -> None:
        """Send a stack-originated packet through the outbound filters."""
        if self.network is None:
            raise RuntimeError(f"host {self.name} is not attached to a network")
        packets = [packet]
        for flt in self.outbound_filters:
            next_packets: List[Packet] = []
            for item in packets:
                next_packets.extend(flt(item))
            packets = next_packets
        for item in packets:
            self.network.send_from(self, item)

    def receive(self, packet: Packet) -> None:
        """Handle a packet delivered off the wire."""
        if not packet.checksums_ok():
            # Real stacks silently discard corrupted segments; censors that
            # skip validation still saw this packet on the path.
            if self.network is not None:
                self.network.trace.record(
                    self.scheduler.now, "drop", self.name, packet, "bad checksum"
                )
            return
        packets = [packet]
        for flt in self.inbound_filters:
            next_packets: List[Packet] = []
            for item in packets:
                next_packets.extend(flt(item))
            packets = next_packets
        for item in packets:
            self._demux(item)

    def _demux(self, packet: Packet) -> None:
        if packet.is_udp:
            handler = self._udp_binds.get(packet.dport)
            if handler is not None:
                handler(packet)
            return
        key = (packet.src, packet.sport, packet.dport)
        endpoint = self._endpoints.get(key)
        if endpoint is not None:
            endpoint.handle_segment(packet)
            return
        listener = self._listeners.get(packet.dport)
        if listener is not None and packet.tcp.is_syn:
            rng = (
                self.flow_rng_provider(key)
                if self.flow_rng_provider is not None
                else None
            )
            endpoint = TCPEndpoint(
                host=self,
                local_port=packet.dport,
                remote_ip=packet.src,
                remote_port=packet.sport,
                personality=self.personality,
                rng=rng,
            )
            self._endpoints[key] = endpoint
            for hook in self.accept_hooks:
                hook(endpoint)
            listener(endpoint)
            endpoint.accept_syn(packet)
        # Segments for unknown flows are silently ignored (no RST replies;
        # keeps injected censor packets from generating noise storms).

    def __repr__(self) -> str:
        return f"Host({self.name} {self.ip})"
