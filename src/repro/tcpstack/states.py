"""TCP connection state names (RFC 793 subset used by the simulator)."""

from __future__ import annotations

__all__ = [
    "CLOSED",
    "LISTEN",
    "SYN_SENT",
    "SYN_RCVD",
    "ESTABLISHED",
    "FIN_WAIT_1",
    "FIN_WAIT_2",
    "CLOSE_WAIT",
    "LAST_ACK",
    "TIME_WAIT",
]

CLOSED = "CLOSED"
LISTEN = "LISTEN"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"
