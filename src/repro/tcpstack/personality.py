"""Per-OS TCP behaviour profiles for §7's client-compatibility experiment.

The paper tested 17 versions of 6 operating systems against every strategy
and found that OS differences reduce to a handful of TCP behaviours —
chiefly whether the stack ignores a payload on a SYN+ACK (Linux-derived
stacks do; Windows and macOS do not). :class:`OSPersonality` captures those
behaviours and :data:`PERSONALITIES` enumerates the paper's OS matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["OSPersonality", "PERSONALITIES", "personality", "all_personality_names"]


@dataclass(frozen=True)
class OSPersonality:
    """TCP behaviours that vary across client operating systems.

    Attributes:
        name: Identifier, e.g. ``"windows-10"``.
        family: OS family (``"windows"``, ``"macos"``, ``"ios"``,
            ``"android"``, ``"linux"``).
        ignores_synack_payload: Whether a payload on a SYN+ACK is discarded
            (Linux behaviour). Stacks that consume it desynchronize when a
            server-side strategy plants a bogus handshake payload — this is
            why Strategies 5, 9 and 10 fail on Windows and macOS (§7).
        ignores_rst_without_ack_in_synsent: Whether a RST lacking the ACK
            flag is ignored while in SYN_SENT. True on every modern OS the
            paper tested, despite RFC 793 suggesting otherwise.
        supports_simultaneous_open: Whether the stack implements TCP
            simultaneous open (RFC 793 requires it; all tested OSes do).
        rst_on_bad_synack_ack: Whether a SYN+ACK with an unacceptable ack
            number elicits a RST while the client stays in SYN_SENT.
        default_window: Initial advertised receive window.
        window_scale: Advertised window-scale shift count.
        mss: Advertised maximum segment size.
        syn_retries: SYN retransmissions before an active open is
            declared failed (Linux ``net.ipv4.tcp_syn_retries``).
        synack_retries: SYN+ACK retransmissions before a passive open is
            abandoned (Linux ``net.ipv4.tcp_synack_retries``).
        data_retries: Data/FIN retransmissions in synchronized states
            before the connection fails (cf. ``tcp_retries2``, scaled to
            the simulator's clock).
        rto: Base retransmission timeout in virtual seconds; each retry
            doubles it (bounded exponential backoff).
    """

    name: str
    family: str
    ignores_synack_payload: bool = True
    ignores_rst_without_ack_in_synsent: bool = True
    supports_simultaneous_open: bool = True
    rst_on_bad_synack_ack: bool = True
    default_window: int = 65535
    window_scale: int = 7
    mss: int = 1460
    syn_retries: int = 6
    synack_retries: int = 5
    data_retries: int = 6
    rto: float = 0.4


def _linux(name: str) -> OSPersonality:
    return OSPersonality(name=name, family="linux")


def _windows(name: str) -> OSPersonality:
    # Windows retries less aggressively than Linux (TcpMaxConnect
    # Retransmissions-style registry defaults, scaled to the simulator).
    return OSPersonality(
        name=name,
        family="windows",
        ignores_synack_payload=False,
        default_window=64240,
        window_scale=8,
        syn_retries=4,
        synack_retries=4,
        data_retries=5,
    )


#: The 17 client OS versions evaluated in §7 of the paper.
PERSONALITIES: Dict[str, OSPersonality] = {
    p.name: p
    for p in [
        _windows("windows-xp-sp3"),
        _windows("windows-7-ultimate-sp1"),
        _windows("windows-8.1-pro"),
        _windows("windows-10-enterprise-17134"),
        _windows("windows-server-2003-datacenter"),
        _windows("windows-server-2008-datacenter"),
        _windows("windows-server-2013-standard"),
        _windows("windows-server-2018-standard"),
        OSPersonality(
            name="macos-10.15", family="macos", ignores_synack_payload=False
        ),
        OSPersonality(name="ios-13.3", family="ios"),
        OSPersonality(name="android-10", family="android"),
        _linux("ubuntu-12.04.5"),
        _linux("ubuntu-14.04.3"),
        _linux("ubuntu-16.04.4"),
        _linux("ubuntu-18.04.1"),
        _linux("centos-6"),
        _linux("centos-7"),
    ]
}

#: Personality used for servers (the paper's servers ran Ubuntu 18.04.3).
SERVER_PERSONALITY = _linux("ubuntu-18.04.3-server")


def personality(name: str) -> OSPersonality:
    """Look up a personality by name (also accepts the server profile)."""
    if name == SERVER_PERSONALITY.name:
        return SERVER_PERSONALITY
    try:
        return PERSONALITIES[name]
    except KeyError:
        raise ValueError(f"unknown OS personality {name!r}") from None


def all_personality_names() -> List[str]:
    """Names of the 17 client OS versions from §7, in a stable order."""
    return sorted(PERSONALITIES)
