"""From-scratch TCP endpoint stack with per-OS behaviour profiles.

Public surface:

- :class:`~repro.tcpstack.host.Host` — a simulated host with connection
  demux, checksum validation, and packet-filter hook points.
- :class:`~repro.tcpstack.endpoint.TCPEndpoint` — the connection state
  machine (handshake, simultaneous open, induced RSTs, segmentation,
  retransmission).
- :class:`~repro.tcpstack.personality.OSPersonality` and
  :data:`~repro.tcpstack.personality.PERSONALITIES` — §7's OS matrix.
"""

from . import states
from .endpoint import DEFAULT_RTO, MAX_RETRANSMITS, TCPEndpoint, seq_delta
from .host import Host, PacketFilter
from .personality import (
    PERSONALITIES,
    SERVER_PERSONALITY,
    OSPersonality,
    all_personality_names,
    personality,
)

__all__ = [
    "DEFAULT_RTO",
    "Host",
    "MAX_RETRANSMITS",
    "OSPersonality",
    "PERSONALITIES",
    "PacketFilter",
    "SERVER_PERSONALITY",
    "TCPEndpoint",
    "all_personality_names",
    "personality",
    "seq_delta",
    "states",
]
