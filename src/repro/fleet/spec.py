"""Fleet-run specification: client mix, arrival process, per-flow plans.

A :class:`FleetSpec` describes a whole serving run — how many clients,
from which countries, speaking which protocols, on which OS stacks, and
how they arrive over virtual time. Everything downstream is a *pure
function of the spec*: :meth:`FleetSpec.flow_plans` expands it into one
:class:`FlowPlan` per client, and every per-flow quantity (address,
arrival time, trial seed, workload) is derived from the flow's global
index alone. That purity is what makes fleet runs shardable — a worker
simulating flows ``{i : i % W == k}`` produces byte-identical per-flow
records to the same flows inside a full serial run.

Seed derivations:

- flow ``i``'s trial seed is ``trial_seed(spec.seed, i)`` — the same
  derivation a ``success_rate`` batch uses, so fleet flow ``i`` replays
  the world of batch trial ``i`` (the single-flow-equivalence anchor);
- world-level draws (mix assignment, Poisson arrival gaps) come from
  :func:`~repro.runtime.seeds.fleet_stream_seed` streams, domain-
  separated from every flow seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..eval.runner import COUNTRY_PROTOCOLS
from ..runtime.seeds import fleet_stream_seed, trial_seed
from ..tcpstack import personality

__all__ = [
    "COUNTRY_PREFIXES",
    "DEFAULT_MIX",
    "FleetMixEntry",
    "FleetSpec",
    "FlowPlan",
    "flow_client_ip",
]

#: /16 client prefixes per country (and the uncensored cohort). These are
#: what the deployed server's GeoStrategySelector is loaded with; note
#: that china's prefix makes fleet flow 0 from china exactly the classic
#: single-trial client address 10.1.0.2.
COUNTRY_PREFIXES: Dict[Optional[str], str] = {
    "china": "10.1",
    "kazakhstan": "10.2",
    "india": "10.3",
    "iran": "10.4",
    "southkorea": "10.5",
    "russia": "10.6",
    None: "172.16",
}

#: Ceiling on clients per run: each flow needs a distinct host address
#: inside a /16 (250 hosts x 256 subnets, avoiding .0/.1/.255 hosts).
MAX_CLIENTS = 60000

_STREAM_ARRIVALS = 0
_STREAM_MIX = 1
_STREAM_SERVER_HOST = 2


@dataclass(frozen=True)
class FleetMixEntry:
    """One cohort in the client mix.

    Attributes:
        country: Censoring country the clients sit behind (``None`` for
            an uncensored cohort).
        protocol: Application protocol the cohort speaks.
        client_os: OS personality of the cohort's client stacks.
        weight: Relative share of the arrival stream.
    """

    country: Optional[str]
    protocol: str
    client_os: str = "ubuntu-18.04.1"
    weight: float = 1.0

    def validate(self) -> None:
        if self.country is not None:
            protocols = COUNTRY_PROTOCOLS.get(self.country)
            if protocols is None:
                raise ValueError(f"unknown country {self.country!r}")
            if self.protocol not in protocols:
                raise ValueError(
                    f"{self.country} does not censor {self.protocol!r} "
                    f"(expected one of {protocols})"
                )
        elif self.protocol not in ("dns", "ftp", "http", "https", "smtp"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        personality(self.client_os)  # raises on unknown personality
        if self.weight <= 0:
            raise ValueError("mix weights must be positive")

    def label(self) -> str:
        return f"{self.country or 'none'}/{self.protocol}"


#: The default serving mix: every censored (country, protocol) pair from
#: Table 1 plus an uncensored cohort, across a spread of client stacks.
DEFAULT_MIX: Tuple[FleetMixEntry, ...] = (
    FleetMixEntry("china", "http", "ubuntu-18.04.1", 3.0),
    FleetMixEntry("china", "https", "windows-10-enterprise-17134", 2.0),
    FleetMixEntry("china", "dns", "centos-7", 1.0),
    FleetMixEntry("china", "ftp", "ubuntu-16.04.4", 1.0),
    FleetMixEntry("china", "smtp", "ubuntu-14.04.3", 1.0),
    FleetMixEntry("india", "http", "android-10", 2.0),
    FleetMixEntry("iran", "http", "windows-7-ultimate-sp1", 2.0),
    FleetMixEntry("iran", "https", "macos-10.15", 2.0),
    FleetMixEntry("kazakhstan", "http", "windows-8.1-pro", 2.0),
    FleetMixEntry("southkorea", "https", "ios-13.3", 2.0),
    FleetMixEntry("russia", "https", "windows-10-enterprise-17134", 2.0),
    FleetMixEntry(None, "http", "ubuntu-18.04.1", 2.0),
)


def flow_client_ip(country: Optional[str], index: int) -> str:
    """The unique client address for global flow ``index`` of a cohort.

    Injective across the whole run: countries get disjoint /16s and the
    global index picks the host bits, so two flows can never share an
    address (the router/demux key). China's flow 0 lands on ``10.1.0.2``,
    the classic single-trial client address.
    """
    prefix = COUNTRY_PREFIXES[country]
    return f"{prefix}.{index // 250}.{2 + index % 250}"


@dataclass(frozen=True)
class FlowPlan:
    """Everything needed to admit one flow, derived purely from the spec.

    Attributes:
        index: Global flow index in the arrival stream.
        arrival: Virtual admission time.
        country: Censoring country (``None`` for uncensored).
        protocol: Application protocol.
        client_os: Client stack personality.
        client_ip: The flow's unique client address.
        seed: The flow's trial seed (``trial_seed(spec.seed, index)``).
        max_time: Virtual seconds the flow's clock runs after arrival.
    """

    index: int
    arrival: float
    country: Optional[str]
    protocol: str
    client_os: str
    client_ip: str
    seed: int
    max_time: float

    def label(self) -> str:
        return f"{self.country or 'none'}/{self.protocol}"


@dataclass(frozen=True)
class FleetSpec:
    """A complete, picklable description of one fleet serving run.

    Attributes:
        clients: Number of client flows in the arrival stream.
        seed: Base seed; all randomness in the run derives from it.
        mix: Cohorts and their weights (default: every Table 1 pair plus
            an uncensored cohort).
        spacing: Fixed inter-arrival gap in virtual seconds (used when
            ``rate`` is unset). The first flow always arrives at t=0.
        rate: Optional Poisson arrival rate (flows per virtual second);
            overrides ``spacing`` with seeded exponential gaps.
        max_time: Per-flow virtual deadline after arrival — identical to
            a single trial's ``max_time``, and the moment the flow's
            verdict freezes and recycling begins.
        trace: Per-flow trace capture: ``"none"`` (no events, flows
            eligible for packet-arena leases), ``"ring"`` (bounded tail
            of ``ring_events`` events per flow), or ``"full"`` (complete
            trace; its digest lands in the flow record).
        ring_events: Ring capacity when ``trace="ring"``.
        slo_latency: Virtual-seconds SLO used in the stats report (share
            of evading flows that finished within this latency).
    """

    clients: int = 500
    seed: int = 0
    mix: Tuple[FleetMixEntry, ...] = DEFAULT_MIX
    spacing: float = 0.1
    rate: Optional[float] = None
    max_time: float = 40.0
    trace: str = "none"
    ring_events: int = 64
    slo_latency: float = 5.0

    def __post_init__(self) -> None:
        if not 1 <= self.clients <= MAX_CLIENTS:
            raise ValueError(f"clients must be in 1..{MAX_CLIENTS}")
        if not self.mix:
            raise ValueError("mix must have at least one entry")
        if self.trace not in ("none", "ring", "full"):
            raise ValueError("trace must be 'none', 'ring', or 'full'")
        if self.spacing < 0:
            raise ValueError("spacing must be non-negative")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        # Normalize mix to a tuple (callers may pass a list) and validate.
        object.__setattr__(self, "mix", tuple(self.mix))
        for entry in self.mix:
            entry.validate()

    # ------------------------------------------------------------------

    def protocols(self) -> List[str]:
        """Protocols present in the mix (sorted; one server app each)."""
        return sorted({entry.protocol for entry in self.mix})

    def flow_plans(self) -> List[FlowPlan]:
        """Expand the spec into one plan per flow (pure, deterministic).

        Arrival times are cumulative (first flow at t=0); cohort
        assignment is a weighted pick from a per-flow RNG keyed by the
        global index, so a flow's identity never depends on how many
        other flows exist — the property worker sharding relies on.
        """
        arrivals_rng = random.Random(fleet_stream_seed(self.seed, _STREAM_ARRIVALS))
        mix_stream = fleet_stream_seed(self.seed, _STREAM_MIX)
        weights = [entry.weight for entry in self.mix]
        total_weight = sum(weights)

        plans: List[FlowPlan] = []
        arrival = 0.0
        for index in range(self.clients):
            if index > 0:
                if self.rate is not None:
                    arrival += arrivals_rng.expovariate(self.rate)
                else:
                    arrival += self.spacing
            pick = random.Random(trial_seed(mix_stream, index)).random() * total_weight
            chosen = self.mix[-1]
            for entry, weight in zip(self.mix, weights):
                if pick < weight:
                    chosen = entry
                    break
                pick -= weight
            plans.append(
                FlowPlan(
                    index=index,
                    arrival=arrival,
                    country=chosen.country,
                    protocol=chosen.protocol,
                    client_os=chosen.client_os,
                    client_ip=flow_client_ip(chosen.country, index),
                    seed=trial_seed(self.seed, index),
                    max_time=self.max_time,
                )
            )
        return plans

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-able description (embedded in artifacts)."""
        return {
            "clients": self.clients,
            "seed": self.seed,
            "mix": [
                {
                    "country": entry.country or "none",
                    "protocol": entry.protocol,
                    "client_os": entry.client_os,
                    "weight": entry.weight,
                }
                for entry in self.mix
            ],
            "spacing": self.spacing,
            "rate": self.rate,
            "max_time": self.max_time,
            "trace": self.trace,
            "slo_latency": self.slo_latency,
        }
