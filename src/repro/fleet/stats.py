"""Fleet-run statistics: throughput, latency percentiles, evasion rates.

:class:`FleetStats` reduces the per-flow verdict records a
:class:`~repro.fleet.world.FleetWorld` produces into the serving-side
report the paper's deployment story needs: how many flows per virtual
second the deployed server handled, how long clients waited for their
verdicts, and — per country and per (country, protocol) pair — how often
the SYN-time strategy selection fired and how often it evaded.

Everything here is a pure function of the records, which are themselves
sorted by global flow index, so the JSON artifact
(:meth:`FleetStats.to_json`) is byte-identical across repeats, worker
counts, and ``REPRO_FASTPATH`` settings — the property the ``fleet-smoke``
CI job diffs for. Wall-clock numbers never enter the artifact.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence

from .spec import FleetSpec

__all__ = ["FleetStats", "percentile"]


def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in 0..1) of ``values``; None if empty."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def _rate(numerator: int, denominator: int) -> Optional[float]:
    return round(numerator / denominator, 6) if denominator else None


class FleetStats:
    """Aggregated report over one fleet run's per-flow records."""

    def __init__(self, spec: FleetSpec, records: List[dict]) -> None:
        self.spec = spec
        self.records = records
        self.flows = len(records)

        self.outcomes: Dict[str, int] = {}
        for record in records:
            self.outcomes[record["outcome"]] = (
                self.outcomes.get(record["outcome"], 0) + 1
            )
        self.evaded = sum(1 for r in records if r["succeeded"])
        self.censored = sum(1 for r in records if r["censored"])
        self.strategy_hits = sum(1 for r in records if r["strategy"] is not None)

        latencies = [r["latency"] for r in records if r["latency"] is not None]
        self.latency_p50 = percentile(latencies, 0.50)
        self.latency_p90 = percentile(latencies, 0.90)
        self.latency_p99 = percentile(latencies, 0.99)

        # Virtual makespan: the last flow's verdict freezes max_time
        # after its arrival — the serving window of the whole run.
        self.virtual_seconds = (
            round(max(r["arrival"] for r in records) + spec.max_time, 9)
            if records
            else 0.0
        )
        self.flows_per_virtual_second = (
            round(self.flows / self.virtual_seconds, 6)
            if self.virtual_seconds
            else None
        )

        # Overhead SLO: of the flows that evaded, how many finished
        # within the spec's latency budget.
        slo_candidates = [
            r for r in records if r["succeeded"] and r["latency"] is not None
        ]
        self.slo_met = sum(
            1 for r in slo_candidates if r["latency"] <= spec.slo_latency
        )
        self.slo_fraction = _rate(self.slo_met, len(slo_candidates))

        self.per_country = self._group(lambda r: r["country"])
        self.per_pair = self._group(lambda r: f"{r['country']}/{r['protocol']}")

    def _group(self, key) -> Dict[str, dict]:
        groups: Dict[str, List[dict]] = {}
        for record in self.records:
            groups.setdefault(key(record), []).append(record)
        out: Dict[str, dict] = {}
        for name in sorted(groups):
            rows = groups[name]
            evaded = sum(1 for r in rows if r["succeeded"])
            hits = sum(1 for r in rows if r["strategy"] is not None)
            latencies = [r["latency"] for r in rows if r["latency"] is not None]
            out[name] = {
                "flows": len(rows),
                "evaded": evaded,
                "evasion_rate": _rate(evaded, len(rows)),
                "censored": sum(1 for r in rows if r["censored"]),
                "strategy_hits": hits,
                "strategy_hit_rate": _rate(hits, len(rows)),
                "timeouts": sum(1 for r in rows if r["outcome"] == "timeout"),
                "latency_p50": percentile(latencies, 0.50),
            }
        return out

    # ------------------------------------------------------------------

    def to_payload(self, include_flows: bool = True) -> dict:
        """Deterministic JSON-able report (no wall-clock quantities)."""
        payload = {
            "spec": self.spec.summary(),
            "flows": self.flows,
            "outcomes": {k: self.outcomes[k] for k in sorted(self.outcomes)},
            "evaded": self.evaded,
            "evasion_rate": _rate(self.evaded, self.flows),
            "censored": self.censored,
            "strategy_hits": self.strategy_hits,
            "latency": {
                "p50": self.latency_p50,
                "p90": self.latency_p90,
                "p99": self.latency_p99,
            },
            "throughput": {
                "virtual_seconds": self.virtual_seconds,
                "flows_per_virtual_second": self.flows_per_virtual_second,
            },
            "slo": {
                "latency_budget": self.spec.slo_latency,
                "met": self.slo_met,
                "fraction": self.slo_fraction,
            },
            "per_country": self.per_country,
            "per_pair": self.per_pair,
        }
        if include_flows:
            payload["flow_records"] = self.records
        return payload

    def to_json(self, include_flows: bool = True) -> str:
        """Canonical JSON rendering (sorted keys, trailing newline)."""
        return (
            json.dumps(
                self.to_payload(include_flows=include_flows),
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )

    # ------------------------------------------------------------------

    def format_report(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"fleet: {self.flows} flows over {self.virtual_seconds:.1f} virtual "
            f"seconds ({self.flows_per_virtual_second or 0:.2f} flows/vsec)",
            f"evaded {self.evaded}/{self.flows}"
            + (
                f" ({100.0 * self.evaded / self.flows:.1f}%)"
                if self.flows
                else ""
            )
            + f", strategy hits {self.strategy_hits}, censor actions on "
            f"{self.censored} flows",
        ]
        if self.latency_p50 is not None:
            lines.append(
                f"latency p50/p90/p99: {self.latency_p50:.3f}/"
                f"{self.latency_p90:.3f}/{self.latency_p99:.3f} vsec; "
                f"SLO ({self.spec.slo_latency:g}s): "
                f"{(self.slo_fraction or 0) * 100:.1f}% of evading flows"
            )
        lines.append("")
        lines.append(
            f"{'cohort':<18} {'flows':>6} {'evaded':>7} {'rate':>7} "
            f"{'hits':>5} {'timeouts':>9}"
        )
        for name, row in self.per_pair.items():
            rate = f"{row['evasion_rate'] * 100:.1f}%" if row["flows"] else "-"
            lines.append(
                f"{name:<18} {row['flows']:>6} {row['evaded']:>7} {rate:>7} "
                f"{row['strategy_hits']:>5} {row['timeouts']:>9}"
            )
        return "\n".join(lines)

    def format_status(self, world) -> str:
        """One live ``--status`` line for a running world."""
        done = len(world.records)
        evaded = sum(1 for r in world.records if r["succeeded"])
        return (
            f"[t={world.scheduler.now:9.3f}s] admitted {world.admitted}"
            f"/{len(world.plans)}  active {world.active_flows:>4}  "
            f"done {done:>5}  evaded {evaded:>5}  recycled {world.recycled:>5}"
        )
