"""Fleet-mode serving simulation: one deployed server, many flows.

The paper's deployment endgame (§8) is a long-lived server that picks an
evasion strategy per client at SYN time. This package simulates that
server *at scale*: a single discrete-event world hosting one deployed
server (per-client strategy engine included) and a seeded arrival stream
of clients mixing countries, protocols, and OS personalities.

The design contract, enforced by ``tests/fleet``: a fleet world with
exactly one flow is bit-identical — verdicts and trace digests — to the
classic per-connection :class:`~repro.eval.runner.Trial` path, and a
same-seed run produces a byte-identical :class:`FleetStats` artifact
regardless of repeats, worker counts, or ``REPRO_FASTPATH``.

Entry points: :func:`run_fleet` (library), ``python -m repro fleet``
(CLI), docs in ``docs/fleet.md``.
"""

from .runner import FleetResult, run_fleet
from .spec import (
    COUNTRY_PREFIXES,
    DEFAULT_MIX,
    FleetMixEntry,
    FleetSpec,
    FlowPlan,
    flow_client_ip,
)
from .stats import FleetStats, percentile
from .world import FleetWorld, FlowRngs, derive_flow_rngs, fleet_selector

__all__ = [
    "COUNTRY_PREFIXES",
    "DEFAULT_MIX",
    "FleetMixEntry",
    "FleetResult",
    "FleetSpec",
    "FleetStats",
    "FleetWorld",
    "FlowPlan",
    "FlowRngs",
    "derive_flow_rngs",
    "fleet_selector",
    "flow_client_ip",
    "percentile",
    "run_fleet",
]
