"""Fleet execution: serial runs, worker sharding, metric folding.

:func:`run_fleet` is the one entry point: build the spec's flow plans,
simulate them (in-process, or round-robin across a process pool), and
reduce the per-flow records into :class:`~repro.fleet.stats.FleetStats`.

Sharding leans on flow isolation: a flow's record is a pure function of
its :class:`~repro.fleet.spec.FlowPlan` (the world slices share nothing
but the strategy-deploying server, whose per-flow RNG/engine state is
keyed by client address), so worker ``k`` simulating plans ``k, k+W,
k+2W, ...`` — with their original global arrival times — produces the
same records those flows would have inside one big serial world. The
merged, index-sorted records are therefore byte-identical for any worker
count, which the determinism suite and the ``fleet-smoke`` CI job pin.

Metric snapshots from workers fold into the caller's registry with the
same associative merge the trial executor uses, keeping observability
worker-count-independent too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .. import fastpath as _fastpath
from ..obs.metrics import active_registry, collecting, is_collecting
from .spec import FleetSpec
from .stats import FleetStats
from .world import FleetWorld

__all__ = ["FleetResult", "run_fleet"]


@dataclass
class FleetResult:
    """Outcome of one fleet run.

    Attributes:
        stats: Aggregated report (also carries the per-flow records).
        records: Per-flow verdict records, sorted by global flow index.
        world: The live world object (serial runs only; ``None`` when
            the run was sharded across workers).
    """

    stats: FleetStats
    records: List[dict]
    world: Optional[FleetWorld] = None


def _run_shard(payload: dict):
    """Worker entry: simulate one round-robin shard of the plan list."""
    spec: FleetSpec = payload["spec"]
    _fastpath.set_enabled(payload["fastpath"])
    plans = spec.flow_plans()[payload["worker"] :: payload["workers"]]
    if not plans:
        return [], None
    if payload["collect"]:
        with collecting() as registry:
            records = FleetWorld(spec, plans=plans).run()
        return records, registry.snapshot()
    return FleetWorld(spec, plans=plans).run(), None


def run_fleet(
    spec: FleetSpec,
    workers: int = 1,
    on_flow_done: Optional[Callable[[FleetWorld, dict], None]] = None,
    keep_world: bool = False,
) -> FleetResult:
    """Run one fleet serving simulation to completion.

    Args:
        spec: The serving run to simulate.
        workers: Process count. ``1`` (default) runs in-process;
            ``N > 1`` shards flows round-robin over a pool and merges —
            records are byte-identical either way.
        on_flow_done: Per-flow progress hook (serial runs only): called
            with the world and each flow's record as verdicts freeze —
            the CLI's ``--status`` view.
        keep_world: Keep the world object on the result (serial only),
            for tests poking at recycling internals.
    """
    if workers <= 1:
        world = FleetWorld(spec, on_flow_done=on_flow_done)
        records = world.run()
        stats = FleetStats(spec, records)
        return FleetResult(stats, records, world=world if keep_world else None)

    payloads = [
        {
            "spec": spec,
            "worker": index,
            "workers": workers,
            "fastpath": _fastpath.enabled(),
            "collect": is_collecting(),
        }
        for index in range(workers)
    ]
    try:
        import multiprocessing

        from ..runtime.executor import _preferred_start_method

        context = multiprocessing.get_context(_preferred_start_method())
        with context.Pool(processes=workers) as pool:
            shards = pool.map(_run_shard, payloads, chunksize=1)
    except (ImportError, OSError):  # pragma: no cover - no fork/spawn support
        shards = [_run_shard(payload) for payload in payloads]

    records: List[dict] = []
    for shard_records, snapshot in shards:
        records.extend(shard_records)
        if snapshot is not None and is_collecting():
            active_registry().merge_snapshot(snapshot)
    records.sort(key=lambda record: record["flow"])
    stats = FleetStats(spec, records)
    return FleetResult(stats, records, world=None)
