"""The long-lived fleet world: one deployed server, many client flows.

A :class:`FleetWorld` holds a single :class:`~repro.netsim.flows.FlowScheduler`
driving one shared, strategy-deploying server host and an arrival stream
of per-flow world slices. Each admitted flow gets exactly the topology a
:class:`~repro.eval.runner.Trial` would have built — its own client host,
censor instance, padded middlebox chain, and per-flow trace — wired to
the *shared* server through a :class:`~repro.netsim.flows.FlowRouter`.

Single-flow equivalence is the design invariant: for a world with one
flow arriving at t=0, every event (timestamps, RNG draws, trace lines)
is bit-identical to ``Trial(...)`` plus ``install_per_client`` on its
server. The pieces that make that hold with *many* flows:

- per-flow RNG streams (:func:`derive_flow_rngs`) replicate the trial's
  seed derivation, including the server host's construction-time
  ephemeral-port draw, so sharing one server host costs no draws;
- the shared server host's passive endpoints draw from the owning
  flow's server stream (``Host.flow_rng_provider``), and the per-client
  strategy engine applies each flow's strategy with that flow's
  strategy stream (``PerClientEngine.rng_provider``);
- a flow's verdict freezes at ``arrival + max_time`` via a deadline
  event re-queued behind every already-scheduled event at that instant
  — the exact inclusive-``until`` semantics of ``Trial.run`` — after
  which the flow is closed: its remaining events are skipped (a trial
  would never have run them) and its state recycles at quiescence.

Recycling on FIN/RST/timeout: endpoints leave the shared server's demux
table as they close (pruning the server apps' connection lists), and at
flow quiescence the router entry, engine decisions, and packet-arena
lease are all returned.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, NamedTuple, Optional

from .. import fastpath as _fastpath
from ..apps import (
    DNSClient,
    DNSServer,
    FTPClient,
    FTPServer,
    HTTPClient,
    HTTPSClient,
    HTTPSServer,
    HTTPServer,
    SMTPClient,
    SMTPServer,
)
from ..deploy import GeoStrategySelector, PerClientEngine
from ..eval.runner import (
    _CENSORED_WORKLOADS,
    DEFAULT_CENSOR_HOP,
    DEFAULT_SERVER_HOP,
    SERVER_IP,
    benign_workload,
    censored_workload,
    default_port,
    make_censor,
)
from ..netsim import Middlebox, Network, NullTrace, RingTrace, Trace
from ..netsim.flows import FlowHandle, FlowRouter, FlowScheduler
from ..obs.metrics import Counter, Histogram
from ..packets.pool import PacketArena
from ..runtime.seeds import fleet_stream_seed
from ..tcpstack import Host, SERVER_PERSONALITY, personality
from .spec import COUNTRY_PREFIXES, FleetSpec, FlowPlan

__all__ = ["FleetWorld", "FlowRngs", "derive_flow_rngs", "fleet_selector"]

_CLIENT_CLASSES = {
    "http": HTTPClient,
    "https": HTTPSClient,
    "dns": DNSClient,
    "ftp": FTPClient,
    "smtp": SMTPClient,
}

_SERVER_CLASSES = {
    "http": HTTPServer,
    "https": HTTPSServer,
    "dns": DNSServer,
    "ftp": FTPServer,
    "smtp": SMTPServer,
}

#: Terminal flow verdicts, labelled like the rest of the repro metrics.
_FLEET_FLOWS = Counter(
    "repro_fleet_flows_total",
    "Fleet flows finalized, by country, protocol, and outcome",
    ("country", "protocol", "outcome"),
)
_FLEET_RECYCLED = Counter(
    "repro_fleet_recycled_total",
    "Fleet flows fully recycled (router/engine/lease state returned)",
)
_FLEET_LATENCY = Histogram(
    "repro_fleet_flow_latency_seconds",
    "Virtual seconds from flow arrival to its terminal app outcome",
    ("country",),
    buckets=(0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 40.0),
)


class FlowRngs(NamedTuple):
    """The four per-flow RNG streams, in a trial's derivation order."""

    censor: random.Random
    client: random.Random
    server: random.Random
    strategy: random.Random


def derive_flow_rngs(flow_seed: int) -> FlowRngs:
    """Replicate ``Trial``'s per-seed RNG stream derivation exactly.

    A trial seeds ``random.Random(seed)`` and splits censor, client,
    server, and strategy streams off it in that order. Fleet flows use
    the same split so a flow with trial seed ``s`` draws the same
    numbers, in the same order, as ``Trial(seed=s)`` would.
    """
    base = random.Random(flow_seed)
    return FlowRngs(
        censor=random.Random(base.randrange(1 << 30)),
        client=random.Random(base.randrange(1 << 30)),
        server=random.Random(base.randrange(1 << 30)),
        strategy=random.Random(base.randrange(1 << 30)),
    )


def fleet_selector() -> GeoStrategySelector:
    """The deployed server's geolocation table for the fleet prefixes."""
    selector = GeoStrategySelector()
    for country, prefix in COUNTRY_PREFIXES.items():
        if country is not None:
            selector.add_prefix(f"{prefix}.0.0/16", country)
    return selector


class _LiveFlow:
    """Mutable state of one admitted, not-yet-recycled flow."""

    __slots__ = (
        "plan",
        "handle",
        "server_rng",
        "strategy_rng",
        "client_host",
        "censor",
        "network",
        "client_app",
        "outcome_time",
    )

    def __init__(self, plan: FlowPlan, handle: FlowHandle) -> None:
        self.plan = plan
        self.handle = handle
        self.server_rng: Optional[random.Random] = None
        self.strategy_rng: Optional[random.Random] = None
        self.client_host: Optional[Host] = None
        self.censor = None
        self.network: Optional[Network] = None
        self.client_app = None
        self.outcome_time: Optional[float] = None


class FleetWorld:
    """One serving world: shared server + an arrival stream of flows.

    Build with a :class:`FleetSpec` (optionally overriding the plan
    list, e.g. to simulate a shard of a larger run — arrivals keep their
    global times, which is what makes sharding byte-identical), then
    :meth:`run` to completion. Per-flow verdict records come back sorted
    by global flow index, so they are invariant to event interleaving.
    """

    def __init__(
        self,
        spec: FleetSpec,
        plans: Optional[List[FlowPlan]] = None,
        selector: Optional[GeoStrategySelector] = None,
        on_flow_done: Optional[Callable[["FleetWorld", dict], None]] = None,
        keep_traces: bool = False,
    ) -> None:
        self.spec = spec
        self.plans = list(plans) if plans is not None else spec.flow_plans()
        self.on_flow_done = on_flow_done
        self.keep_traces = keep_traces

        self.scheduler = FlowScheduler()
        self.arena = PacketArena(max_free=2048)
        self._use_leases = spec.trace == "none" and _fastpath.enabled()

        # The deployed server. Its own RNG stream is domain-separated
        # from every flow seed and is only consumed at construction (the
        # ephemeral-port draw); all serving randomness comes from the
        # per-flow streams below.
        self.server_host = Host(
            "server",
            SERVER_IP,
            self.scheduler,
            random.Random(fleet_stream_seed(spec.seed, 2)),
            SERVER_PERSONALITY,
        )
        self.router = FlowRouter(self.scheduler, self.server_host)
        self.server_host.attach(self.router)
        self.server_host.flow_rng_provider = self._server_rng_for
        self.server_host.on_endpoint_closed = self._endpoint_closed

        self.selector = selector if selector is not None else fleet_selector()
        protocols = spec.protocols()
        port_protocols = {default_port(p): p for p in protocols}
        self.engine = PerClientEngine(
            self.selector,
            protocols[0],
            rng_provider=self._strategy_rng_for,
            port_protocols=port_protocols,
        )
        self.server_host.inbound_filters.append(self.engine.inbound_filter)
        self.server_host.outbound_filters.append(self.engine.outbound_filter)

        self.server_apps = {}
        for protocol in protocols:
            port = default_port(protocol)
            app = _SERVER_CLASSES[protocol](self.server_host, port)
            app.install()
            self.server_apps[port] = app

        self._flows: Dict[str, _LiveFlow] = {}
        self._next_plan = 0
        self.records: List[dict] = []
        self.traces: Dict[int, Trace] = {}
        self.admitted = 0
        self.recycled = 0

    # ------------------------------------------------------------------
    # Shared-host hooks

    def _server_rng_for(self, key) -> Optional[random.Random]:
        """Per-flow server stream for a passive open (keyed by client ip)."""
        flow = self._flows.get(key[0])
        return flow.server_rng if flow is not None else None

    def _strategy_rng_for(self, client_ip: str) -> random.Random:
        """Per-flow strategy stream for the per-client engine."""
        flow = self._flows.get(client_ip)
        if flow is not None and flow.strategy_rng is not None:
            return flow.strategy_rng
        return self.engine.rng  # stray packet after recycle; never drawn in practice

    def _endpoint_closed(self, endpoint) -> None:
        """Prune recycled connections from the owning server app."""
        app = self.server_apps.get(endpoint.local_port)
        if app is not None:
            forget = getattr(app, "forget_connection", None)
            if forget is not None:
                forget(endpoint)

    # ------------------------------------------------------------------
    # Flow lifecycle

    def _make_trace(self) -> Trace:
        if self.spec.trace == "full":
            return Trace()
        if self.spec.trace == "ring":
            return RingTrace(self.spec.ring_events)
        return NullTrace()

    def _schedule_next_arrival(self) -> None:
        """Queue the next plan's admission (keeps the heap open-ended)."""
        if self._next_plan >= len(self.plans):
            return
        plan = self.plans[self._next_plan]
        self._next_plan += 1
        handle = FlowHandle(
            plan.index,
            plan.client_ip,
            trace=self._make_trace(),
            arena=self.arena.lease() if self._use_leases else None,
        )
        self.scheduler.schedule_at_in(
            handle, plan.arrival, self._admit, (plan, handle)
        )

    def _admit(self, plan: FlowPlan, handle: FlowHandle) -> None:
        """Build the flow's world slice (runs bound to the flow)."""
        self._schedule_next_arrival()

        rngs = derive_flow_rngs(plan.seed)
        client_host = Host(
            "client",
            plan.client_ip,
            self.scheduler,
            rngs.client,
            personality(plan.client_os),
        )
        censor = make_censor(plan.country, rngs.censor)
        middleboxes: List[Middlebox] = [
            Middlebox() for _ in range(DEFAULT_CENSOR_HOP - 1)
        ]
        if censor is not None:
            middleboxes.append(censor)
        while len(middleboxes) < DEFAULT_SERVER_HOP - 1:
            middleboxes.append(Middlebox())
        network = Network(
            self.scheduler,
            client_host,
            self.server_host,
            middleboxes,
            trace=handle.trace,
        )
        client_host.attach(network)
        self.router.register(plan.client_ip, network)
        # Mirror the server-host construction draw a dedicated trial
        # makes: Host.__init__ consumes randrange(1000) for its ephemeral
        # port base. The shared server host was built long ago, so the
        # flow's server stream performs the draw here instead.
        rngs.server.randrange(1000)

        flow = _LiveFlow(plan, handle)
        flow.server_rng = rngs.server
        flow.strategy_rng = rngs.strategy
        flow.client_host = client_host
        flow.censor = censor
        flow.network = network
        self._flows[plan.client_ip] = flow

        params = (
            censored_workload(plan.country, plan.protocol)
            if plan.country is not None
            and (plan.country, plan.protocol) in _CENSORED_WORKLOADS
            else benign_workload(plan.protocol)
        )
        if plan.protocol == "dns":
            params.setdefault("tries", 3)
        port = default_port(plan.protocol)
        client_app = _CLIENT_CLASSES[plan.protocol](
            client_host, SERVER_IP, port, **params
        )
        client_app.on_complete = lambda outcome: self._note_complete(flow)
        flow.client_app = client_app
        self.admitted += 1

        client_app.start()
        # The flow's verdict deadline — identical to Trial.run's
        # ``network.run(until=max_time)`` horizon, relative to arrival.
        self.scheduler.schedule(plan.max_time, lambda: self._deadline(flow))

    def _note_complete(self, flow: _LiveFlow) -> None:
        if flow.outcome_time is None:
            flow.outcome_time = self.scheduler.now

    def _deadline(self, flow: _LiveFlow) -> None:
        """Re-queue finalization behind this instant's remaining events.

        ``Trial.run(until=T)`` executes every event at exactly ``T``
        before reading the verdict. The deadline timer was scheduled at
        admission, so it sorts *before* same-instant events scheduled
        later; bouncing once through the queue runs after all of them
        (nothing in the simulator schedules at zero delay, so no new
        same-instant events can appear behind the bounce).
        """
        self.scheduler.schedule_at(self.scheduler.now, self._finalize, (flow,))

    def _finalize(self, flow: _LiveFlow) -> None:
        """Freeze the verdict, record the flow, and begin recycling."""
        plan = flow.plan
        app = flow.client_app
        outcome = app.outcome or "timeout"
        country = plan.country or "none"
        strategy_hit = any(
            decision is not None
            for key, decision in self.engine.decisions.items()
            if key[0] == plan.client_ip
        )
        latency = (
            flow.outcome_time - plan.arrival
            if flow.outcome_time is not None
            else None
        )
        record = {
            "flow": plan.index,
            "client_ip": plan.client_ip,
            "country": country,
            "protocol": plan.protocol,
            "client_os": plan.client_os,
            "arrival": round(plan.arrival, 9),
            "outcome": outcome,
            "succeeded": app.succeeded,
            "censored": (
                flow.censor.censorship_events > 0 if flow.censor is not None else False
            ),
            "strategy": (
                self.selector.table.get((plan.country, plan.protocol))
                if strategy_hit
                else None
            ),
            "latency": round(latency, 9) if latency is not None else None,
            "trace_digest": (
                flow.handle.trace.digest() if self.spec.trace == "full" else None
            ),
        }
        self.records.append(record)
        _FLEET_FLOWS.inc(country=country, protocol=plan.protocol, outcome=outcome)
        if latency is not None:
            _FLEET_LATENCY.observe(latency, country=country)
        if self.keep_traces:
            self.traces[plan.index] = flow.handle.trace

        # Close the flow: its clock has ended. Remaining scheduled events
        # are skipped by the FlowScheduler (a dedicated trial would never
        # have run them), and quiescence triggers full recycling.
        handle = flow.handle
        handle.closed = True
        handle.on_quiescent = self._recycle
        for endpoint in self.server_host.endpoints():
            if endpoint.remote_ip == plan.client_ip:
                endpoint._teardown()
        if self.on_flow_done is not None:
            self.on_flow_done(self, record)

    def _recycle(self, handle: FlowHandle) -> None:
        """Return all per-flow state once the last flow event drained."""
        flow = self._flows.pop(handle.client_ip, None)
        self.router.unregister(handle.client_ip)
        self.engine.forget_client(handle.client_ip)
        if handle.arena is not None:
            handle.arena.reclaim()
            handle.arena = None
        if flow is not None:
            flow.network = None
            flow.client_host = None
            flow.client_app = None
        self.recycled += 1
        _FLEET_RECYCLED.inc()

    # ------------------------------------------------------------------

    @property
    def active_flows(self) -> int:
        """Flows admitted but not yet recycled."""
        return len(self._flows)

    def run(self) -> List[dict]:
        """Drive the world to quiescence; per-flow records by flow index.

        The event cap scales with the plan count (a single trial needs
        at most a few thousand events; the generous per-flow budget only
        guards against a runaway loop).
        """
        self._schedule_next_arrival()
        cap = max(1_000_000, 20_000 * len(self.plans))
        self.scheduler.run(until=None, max_events=cap)
        if len(self.records) != len(self.plans):  # pragma: no cover
            raise RuntimeError(
                f"fleet run incomplete: {len(self.records)} of "
                f"{len(self.plans)} flows finalized (event cap {cap})"
            )
        self.records.sort(key=lambda record: record["flow"])
        return self.records
