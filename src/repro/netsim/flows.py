"""Multi-flow plumbing for fleet-mode worlds.

A classic :class:`~repro.eval.runner.Trial` builds one world per
connection: one scheduler, one two-endpoint network, one censor. Fleet
mode (:mod:`repro.fleet`) keeps a *single* long-lived world in which one
deployed server handles thousands of concurrent client flows. Three
pieces make that possible without touching single-flow semantics:

- :class:`FlowHandle` — per-flow bookkeeping: the flow's trace, its
  optional packet-arena lease, and an outstanding-event count used to
  detect quiescence so resources can be recycled.
- :class:`FlowScheduler` — a :class:`~repro.netsim.events.Scheduler`
  whose heap entries carry the flow that scheduled them. Event ordering
  is byte-identical to the base scheduler (same ``(when, counter)``
  keys); the tag only adds per-flow accounting, per-flow packet-arena
  activation around each callback, and the ability to *retire* a flow —
  once a handle is closed its remaining events are skipped, exactly as a
  ``Trial``'s post-``max_time`` events never run.
- :class:`FlowRouter` — stands in as the deployed server host's
  ``network``: outbound server packets are routed to the per-flow
  :class:`~repro.netsim.network.Network` owning the destination client,
  and trace records are demultiplexed to that flow's trace, so each
  flow's trace reads exactly like a single-flow trial's.

The single-flow-equivalence suite (``tests/fleet``) pins the guarantee
this module is built around: a fleet world containing exactly one flow
produces bit-identical verdicts and trace digests to today's
per-connection path.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Optional

from ..packets import Packet
from ..packets import pool as _pool
from .events import Scheduler, Timer
from .network import Network, NetworkNode
from .trace import NullTrace, Trace

__all__ = ["FlowHandle", "FlowRouter", "FlowScheduler"]


class FlowHandle:
    """Book-keeping for one flow living inside a shared world.

    Attributes:
        index: The flow's global index in the arrival stream.
        client_ip: The flow's client address (routing/demux key).
        trace: The flow's trace (``NullTrace`` / ``RingTrace`` / ``Trace``).
        arena: Packet-arena lease active during this flow's events, or
            ``None``. Only legal with a :class:`NullTrace` (a recording
            trace would retain recycled packets) — same rule as
            :func:`repro.packets.pool.pooled`.
        pending: Number of this flow's events still in the heap.
        closed: Once set, remaining events are skipped (the flow's clock
            has ended, like a trial reaching ``max_time``).
        on_quiescent: Called once, with the handle, when the flow is
            closed and its last event has drained — the safe point to
            reclaim the lease and recycle per-flow state.
    """

    __slots__ = (
        "index",
        "client_ip",
        "trace",
        "arena",
        "pending",
        "closed",
        "on_quiescent",
    )

    def __init__(
        self,
        index: int,
        client_ip: str,
        trace: Optional[Trace] = None,
        arena=None,
    ) -> None:
        self.index = index
        self.client_ip = client_ip
        self.trace = trace if trace is not None else NullTrace()
        self.arena = arena
        self.pending = 0
        self.closed = False
        self.on_quiescent: Optional[Callable[["FlowHandle"], None]] = None

    def __repr__(self) -> str:
        state = "closed" if self.closed else "live"
        return f"FlowHandle(#{self.index} {self.client_ip} {state} pending={self.pending})"


class FlowScheduler(Scheduler):
    """A scheduler whose events know which flow scheduled them.

    Every entry is a 6-tuple ``(when, counter, timer, callback, args,
    flow)``; ``flow`` is whatever :attr:`current` was when the entry was
    pushed (``None`` for world-level events). Ordering is identical to
    the base scheduler — the same ``(when, counter)`` sort keys drive the
    heap — so a world with one flow replays the exact event sequence of a
    single-flow trial.

    Around each flow-tagged callback the scheduler binds the flow: it
    becomes :attr:`current` (so events it schedules inherit the tag) and
    its arena lease, if any, becomes the active packet arena. Closed
    flows' events are skipped without executing, and when a closed flow's
    pending count reaches zero its ``on_quiescent`` hook fires.
    """

    def __init__(self) -> None:
        super().__init__()
        self.current: Optional[FlowHandle] = None

    # ------------------------------------------------------------------
    # Scheduling (tagging variants of the base API)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay``, tagged with the current flow."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        timer = Timer()
        flow = self.current
        heapq.heappush(
            self._queue,
            (self.now + delay, self._counter, timer, callback, (), flow),
        )
        self._counter += 1
        if flow is not None:
            flow.pending += 1
        return timer

    def schedule_at(self, when: float, callback: Callable, args: tuple = ()) -> None:
        """Schedule at absolute ``when``, tagged with the current flow."""
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        flow = self.current
        heapq.heappush(
            self._queue, (when, self._counter, None, callback, args, flow)
        )
        self._counter += 1
        if flow is not None:
            flow.pending += 1

    def schedule_at_in(
        self, flow: FlowHandle, when: float, callback: Callable, args: tuple = ()
    ) -> None:
        """Schedule a world-originated event explicitly tagged for ``flow``.

        Used for flow admission: the arrival event must already belong
        to the flow so the entire causal chain it starts — connect
        timers, packet hops, retransmissions — inherits the tag.
        """
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(
            self._queue, (when, self._counter, None, callback, args, flow)
        )
        self._counter += 1
        flow.pending += 1

    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Drain the queue with per-flow binding (base semantics otherwise)."""
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while queue and executed < max_events:
            entry = queue[0]
            when = entry[0]
            if until is not None and when > until:
                break
            pop(queue)
            timer = entry[2]
            flow = entry[5]
            if flow is not None:
                flow.pending -= 1
                if flow.closed:
                    # The flow's clock has ended: drop the event unrun
                    # (a single-flow trial never runs post-max_time
                    # events either) and recycle at quiescence.
                    self._check_quiescent(flow)
                    continue
            if timer is not None and timer.cancelled:
                if flow is not None:
                    self._check_quiescent(flow)
                continue
            if when > self.now:
                self.now = when
            if flow is None:
                entry[3](*entry[4])
            else:
                previous = self.current
                self.current = flow
                previous_arena = _pool._ACTIVE
                _pool._ACTIVE = flow.arena
                try:
                    entry[3](*entry[4])
                finally:
                    self.current = previous
                    _pool._ACTIVE = previous_arena
                self._check_quiescent(flow)
            executed += 1
        if until is not None and (not queue or queue[0][0] > until):
            self.now = max(self.now, until)
        return executed

    @staticmethod
    def _check_quiescent(flow: FlowHandle) -> None:
        if flow.closed and flow.pending == 0 and flow.on_quiescent is not None:
            hook, flow.on_quiescent = flow.on_quiescent, None
            hook(flow)


class _RouterTrace:
    """Demultiplexes the server host's trace records to per-flow traces.

    The server host records through ``self.network.trace`` (for example
    checksum-validation drops); with a :class:`FlowRouter` as its
    network, those records land on the trace of the flow owning the
    packet's client address, keeping every flow's trace identical to
    what a dedicated single-flow world would have recorded.
    """

    __slots__ = ("_router",)

    def __init__(self, router: "FlowRouter") -> None:
        self._router = router

    def record(
        self,
        time: float,
        kind: str,
        location: str,
        packet: Optional[Packet] = None,
        detail: str = "",
    ) -> None:
        router = self._router
        network = None
        if packet is not None:
            network = router.network_for(packet.src)
            if network is None:
                network = router.network_for(packet.dst)
        trace = network.trace if network is not None else router.world_trace
        trace.record(time, kind, location, packet, detail)


class FlowRouter:
    """The deployed server host's "network": routes by destination flow.

    Duck-types the :class:`~repro.netsim.network.Network` surface a
    :class:`~repro.tcpstack.host.Host` uses (``send_from``, ``trace``,
    ``scheduler``): an outbound server packet is handed to the per-flow
    network registered for its destination address, which walks the
    flow's own middlebox chain (censor included) back to the client.
    Packets for unregistered destinations — stragglers emitted after a
    flow was recycled — are counted and dropped into the world trace.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        server: NetworkNode,
        world_trace: Optional[Trace] = None,
    ) -> None:
        self.scheduler = scheduler
        self.server = server
        self.world_trace = world_trace if world_trace is not None else NullTrace()
        self.trace = _RouterTrace(self)
        self.unrouted = 0
        self._networks: Dict[str, Network] = {}

    def register(self, client_ip: str, network: Network) -> None:
        """Route server packets addressed to ``client_ip`` via ``network``."""
        self._networks[client_ip] = network

    def unregister(self, client_ip: str) -> None:
        """Stop routing to ``client_ip`` (flow recycled)."""
        self._networks.pop(client_ip, None)

    def network_for(self, client_ip: str) -> Optional[Network]:
        """The per-flow network owning ``client_ip``, if registered."""
        return self._networks.get(client_ip)

    def send_from(self, node: Any, packet: Packet) -> None:
        """Transmit a server-originated packet toward its flow's client."""
        network = self._networks.get(packet.dst)
        if network is None:
            self.unrouted += 1
            self.world_trace.record(
                self.scheduler.now, "drop", node.name, packet, "no route to flow"
            )
            return
        network.send_from(node, packet)

    def __len__(self) -> int:
        return len(self._networks)
