"""Discrete-event scheduler with a virtual clock.

Everything in the reproduction runs on virtual time: hosts, censors, and
retransmission timers all schedule callbacks here, and experiments advance
the clock by draining the event heap. No wall-clock time is ever consulted,
which keeps every trial fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["Scheduler", "Timer"]


class Timer:
    """Handle for a scheduled callback that can be cancelled."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the associated callback from firing."""
        self.cancelled = True


class Scheduler:
    """A minimal discrete-event loop ordered by (time, insertion order).

    The insertion-order tiebreak guarantees FIFO delivery for events
    scheduled at the same virtual instant, which in turn preserves packet
    ordering on links with a constant per-hop delay.
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Timer, Callable[[], None]]] = []
        self._counter = 0
        self.now = 0.0

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        timer = Timer()
        heapq.heappush(self._queue, (self.now + delay, self._counter, timer, callback))
        self._counter += 1
        return timer

    def schedule_at(self, when: float, callback: Callable, args: tuple = ()) -> None:
        """Schedule an uncancellable callback at absolute time ``when``.

        The hot-path variant used by the network's packet walk: no
        :class:`Timer` allocation, and ``args`` are applied at dispatch
        so call sites avoid building a closure per packet-hop. Entries
        are 5-tuples alongside ``schedule``'s 4-tuples in the same heap;
        the unique counter in slot 1 guarantees heap comparisons never
        reach the mixed-type tail.
        """
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (when, self._counter, None, callback, args))
        self._counter += 1

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Drain the event queue, advancing virtual time.

        Args:
            until: Stop once the next event would fire after this time
                (events at exactly ``until`` still run). ``None`` drains
                the queue completely.
            max_events: Safety valve against runaway event loops.

        Returns:
            The number of events executed.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        while queue and executed < max_events:
            entry = queue[0]
            when = entry[0]
            if until is not None and when > until:
                break
            pop(queue)
            timer = entry[2]
            if timer is not None and timer.cancelled:
                continue
            if when > self.now:
                self.now = when
            if len(entry) == 5:
                entry[3](*entry[4])
            else:
                entry[3]()
            executed += 1
        if until is not None and (not queue or queue[0][0] > until):
            self.now = max(self.now, until)
        return executed

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)
