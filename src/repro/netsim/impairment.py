"""Deterministic network impairments: loss, duplication, reordering, corruption.

The paper's strategies were measured over real, lossy paths into China,
India, Iran, and Kazakhstan; several of them (TTL-limited insertion,
simultaneous open, injected-RST races) depend on packet orderings that
real networks do not guarantee. :class:`Impairment` is a seeded policy
the :class:`~repro.netsim.network.Network` applies on every link
traversal, so a trial can be replayed under controlled path conditions
and still be bit-for-bit reproducible.

Determinism guarantees:

- Every random decision is drawn from one dedicated ``random.Random``
  owned by the network (the *net stream*), which is split from the trial
  seed (see :func:`repro.runtime.seeds.net_stream_seed`) — never shared
  with censor, endpoint, strategy, or GA randomness.
- Draws happen at *schedule* time in the deterministic order the event
  loop processes packets, so the same seed replays the same impaired
  trace exactly.
- A null policy (:meth:`Impairment.none`, or any policy whose knobs are
  all zero) makes **zero** draws and schedules hops through the exact
  pre-impairment code path, so unimpaired trials are byte-identical to
  the historical simulator.
- Per-knob gating: a knob set to ``0.0`` never consumes a draw, so e.g.
  a loss-only sweep's draw sequence is independent of the duplication
  and reordering knobs.

Every impairment decision is recorded as a first-class trace event
(``loss`` / ``dup`` / ``reorder`` / ``corrupt``), so waterfalls and
trace digests can explain an impaired trial instead of just differing.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Union

from ..packets import Packet

__all__ = ["Impairment", "corrupt_payload"]

#: Directions an impairment may be scoped to.
_DIRECTIONS = ("both", "c2s", "s2c")


@dataclass(frozen=True)
class Impairment:
    """A per-link impairment policy (all probabilities per traversal).

    Attributes:
        loss: Probability a packet is dropped on a link.
        dup: Probability a duplicate copy is created (delivered
            ``dup_spacing`` seconds after the original).
        reorder: Probability a packet is held back ``reorder_delay``
            extra seconds, letting later packets overtake it.
        corrupt: Probability one payload bit is flipped. The original
            checksum is pinned first, so end hosts detect and drop the
            segment while checksum-blind censors (the GFW) still inspect
            the corrupted bytes.
        jitter: Uniform extra latency in ``[0, jitter)`` seconds added to
            every traversal (latency variance; with multiple packets in
            flight this also reorders).
        reorder_delay: Hold-back applied when ``reorder`` fires.
        dup_spacing: Delay between an original and its duplicate.
        direction: ``"both"``, ``"c2s"``, or ``"s2c"`` — which direction
            the policy applies to (per-direction loss etc.).
    """

    loss: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    corrupt: float = 0.0
    jitter: float = 0.0
    reorder_delay: float = 0.012
    dup_spacing: float = 0.002
    direction: str = "both"

    def __post_init__(self) -> None:
        for knob in ("loss", "dup", "reorder", "corrupt"):
            value = getattr(self, knob)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{knob} must be in [0, 1], got {value!r}")
        for delay in ("jitter", "reorder_delay", "dup_spacing"):
            if getattr(self, delay) < 0:
                raise ValueError(f"{delay} must be non-negative")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )

    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "Impairment":
        """The null policy: a perfect network (no draws, no effect)."""
        return cls()

    def is_null(self) -> bool:
        """Whether this policy can never affect a packet."""
        return (
            self.loss == 0.0
            and self.dup == 0.0
            and self.reorder == 0.0
            and self.corrupt == 0.0
            and self.jitter == 0.0
        )

    def applies(self, direction: str) -> bool:
        """Whether the policy covers packets travelling ``direction``."""
        return self.direction == "both" or self.direction == direction

    # ------------------------------------------------------------------
    # Canonical JSON form (what TrialSpec hashes into the cache key)

    def as_dict(self) -> Dict[str, Any]:
        """Minimal canonical dict: only knobs that differ from defaults.

        Two policies with equal effect always produce equal dicts, which
        is what makes impairment-bearing cache keys sound.
        """
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value != spec.default:
                out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Impairment":
        """Rebuild a policy from its dict form (rejects unknown knobs)."""
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown impairment knobs: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_value(
        cls, value: Union["Impairment", Dict[str, Any], None]
    ) -> Optional["Impairment"]:
        """Normalize an ``impairment=`` argument (policy, dict, or None)."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TypeError(f"impairment must be Impairment/dict/None, got {value!r}")


def _pinned_checksum(packet: Packet) -> None:
    """Freeze the transport checksum at its current (correct) value.

    Serialization computes the checksum lazily unless an override is
    set; pinning it before a payload flip is what makes the corruption
    *detectable* by end hosts.
    """
    transport = packet.transport
    if transport is None or transport.chksum_override is not None:
        return
    raw = transport.serialize(packet.src, packet.dst)
    offset = 16 if packet.tcp is not None else 6  # TCP vs UDP checksum field
    transport.chksum_override = struct.unpack("!H", raw[offset : offset + 2])[0]


def corrupt_payload(packet: Packet, rng: random.Random) -> Tuple[Packet, int]:
    """Return a copy of ``packet`` with one payload bit flipped.

    The pre-corruption checksum is pinned first so receivers' checksum
    validation catches the damage (and retransmission recovers), while
    censors that skip validation see the corrupted bytes.

    Returns the corrupted copy and the flipped byte offset.
    """
    corrupted = packet.copy()
    transport = corrupted.transport
    load = transport.load
    if not load:
        raise ValueError("cannot corrupt an empty payload")
    offset = rng.randrange(len(load))
    bit = 1 << rng.randrange(8)
    _pinned_checksum(corrupted)
    transport.load = load[:offset] + bytes([load[offset] ^ bit]) + load[offset + 1 :]
    return corrupted, offset
