"""The simulated client–path–server network.

Every experiment in the paper uses the same topology: one client (inside
the censoring country), one server (outside), and censoring middleboxes on
the path between them. :class:`Network` models that path as an ordered
middlebox chain with a constant per-hop delay, TTL decrementing (so
TTL-limited insertion packets and censor-localization probes behave
faithfully), and full packet tracing.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Protocol, Sequence

from .. import fastpath as _fastpath
from ..obs import spans as _spans
from ..obs.metrics import Counter
from ..packets import Packet
from .events import Scheduler
from .impairment import Impairment, corrupt_payload
from .middlebox import DIRECTION_C2S, DIRECTION_S2C, Middlebox, PathContext
from .trace import Trace

__all__ = ["Network", "NetworkNode"]

#: Wire-level packet events. Prebound per event kind: these fire once
#: per packet, so each increment must stay a single dict operation.
_NET_PACKETS = Counter(
    "repro_net_packets_total",
    "Packets handled by the network path, by event",
    ("event",),  # send | inject | recv | drop
)
_PKT_SEND = _NET_PACKETS.labels(event="send")
_PKT_INJECT = _NET_PACKETS.labels(event="inject")
_PKT_RECV = _NET_PACKETS.labels(event="recv")
_PKT_DROP = _NET_PACKETS.labels(event="drop")

#: Impairment actions actually applied, per kind and direction.
#: Deterministic: draws come from the trial's seeded net RNG.
_IMPAIRMENT_EVENTS = Counter(
    "repro_impairment_events_total",
    "Impairment actions applied on the path, by kind and direction",
    ("kind", "direction"),  # kind: loss | corrupt | reorder | dup
)


class NetworkNode(Protocol):
    """Anything attachable to an end of the network path."""

    ip: str
    name: str

    def receive(self, packet: Packet) -> None:
        """Handle a packet delivered off the wire."""


class Network:
    """A two-endpoint network path with middleboxes.

    Hop numbering: middlebox ``i`` (0-indexed from the client side) sits at
    hop ``i + 1`` from the client; the server is at hop
    ``len(middleboxes) + 1``. A packet with TTL ``t`` sent by the client is
    observed by middleboxes ``0 .. t-1`` and reaches the server only when
    ``t`` exceeds the number of middleboxes — exactly the arithmetic needed
    for TTL-limited insertion packets and §6's censor localization probes.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        client: NetworkNode,
        server: NetworkNode,
        middleboxes: Sequence[Middlebox] = (),
        hop_delay: float = 0.005,
        trace: Optional[Trace] = None,
        impairment: Optional[Impairment] = None,
        net_rng: Optional[random.Random] = None,
    ) -> None:
        self.scheduler = scheduler
        self.client = client
        self.server = server
        self.middleboxes: List[Middlebox] = list(middleboxes)
        self.hop_delay = hop_delay
        self.trace = trace if trace is not None else Trace()
        # A null policy is normalized to None so the hot path stays the
        # exact pre-impairment code (no draws, byte-identical traces).
        if impairment is not None and impairment.is_null():
            impairment = None
        self.impairment = impairment
        self._net_rng = (
            net_rng if net_rng is not None else random.Random(0)
        ) if impairment is not None else None
        self._contexts = [
            PathContext(self, index, getattr(box, "name", f"mb{index}"))
            for index, box in enumerate(self.middleboxes)
        ]
        # Span name per box, precomputed so the per-packet path never
        # re-classifies. Censors are recognized structurally (they all
        # carry a censorship_events counter) to avoid importing the
        # censors package from netsim.
        self._box_spans = [
            "simulate/censor" if hasattr(box, "censorship_events")
            else "simulate/middlebox"
            for box in self.middleboxes
        ]
        # Hop coalescing (fast path): inert chain-padding middleboxes are
        # plain base-class instances that forward every packet unchanged,
        # so the walk can jump straight to the next *active* box with one
        # scheduled event instead of one per hop. Decided at construction
        # time; impaired paths always walk per-link (draw order).
        self._coalesce = impairment is None and _fastpath.enabled()
        self._build_skip_tables()

    def _build_skip_tables(self) -> None:
        """Precompute the next-active-box index in each direction.

        ``_next_c2s[i]`` is the first active index ``>= i`` (or ``n`` for
        server delivery); ``_next_s2c[i + 1]`` the first active index
        ``<= i`` (or ``-1`` for client delivery). Inert means exactly the
        base :class:`Middlebox` — any subclass is assumed interesting.
        """
        boxes = self.middleboxes
        n = len(boxes)
        active = [type(box) is not Middlebox for box in boxes]
        self._next_c2s = [n] * (n + 1)
        nxt = n
        for i in range(n - 1, -1, -1):
            if active[i]:
                nxt = i
            self._next_c2s[i] = nxt
        self._next_s2c = [-1] * (n + 1)
        prev = -1
        for i in range(n):
            if active[i]:
                prev = i
            self._next_s2c[i + 1] = prev

    # ------------------------------------------------------------------
    # Entry points

    def send_from(self, node: NetworkNode, packet: Packet) -> None:
        """Transmit ``packet`` originating at endpoint ``node``."""
        if node is self.client:
            direction = DIRECTION_C2S
            start = 0
        elif node is self.server:
            direction = DIRECTION_S2C
            start = len(self.middleboxes) - 1
        else:
            raise ValueError(f"unknown endpoint {node!r}")
        _PKT_SEND.inc()
        self.trace.record(self.scheduler.now, "send", node.name, packet)
        self._schedule_hop(packet, direction, start, packet.ip.ttl)

    def inject_from(self, position: int, packet: Packet, toward: str, name: str) -> None:
        """Inject ``packet`` at middlebox ``position`` heading ``toward`` an end."""
        _PKT_INJECT.inc()
        self.trace.record(self.scheduler.now, "inject", name, packet, f"toward {toward}")
        if toward == "server":
            direction = DIRECTION_C2S
            start = position + 1
        elif toward == "client":
            direction = DIRECTION_S2C
            start = position - 1
        else:
            raise ValueError(f"toward must be 'client' or 'server', not {toward!r}")
        self._schedule_hop(packet, direction, start, packet.ip.ttl)

    def run(self, until: Optional[float] = None, max_events: int = 1_000_000) -> int:
        """Advance the simulation (delegates to the scheduler)."""
        return self.scheduler.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Path walking

    def _schedule_hop(self, packet: Packet, direction: str, index: int, ttl: int) -> None:
        imp = self.impairment
        if imp is None or not imp.applies(direction):
            if self._coalesce:
                self._schedule_coalesced(packet, direction, index, ttl)
                return
            self.scheduler.schedule(
                self.hop_delay, lambda: self._hop(packet, direction, index, ttl)
            )
            return
        self._schedule_impaired_hop(imp, packet, direction, index, ttl)

    def _schedule_coalesced(self, packet: Packet, direction: str, index: int, ttl: int) -> None:
        """Schedule one event covering the run of inert hops from ``index``.

        Replays the per-hop walk exactly: the arrival time is built by the
        same iterated ``now + hop_delay`` float additions the per-hop
        recursion would perform (timestamps are digest material), TTL is
        decremented once per skipped link, and an expiry *inside* the
        skipped run becomes a drop event at the hop where the per-hop
        walk would have recorded it.
        """
        n = len(self.middleboxes)
        if len(self._next_c2s) != n + 1:  # chain mutated post-construction
            self._build_skip_tables()
        if direction == DIRECTION_C2S:
            target = self._next_c2s[index] if index < n else n
            if index + ttl < target:
                steps = ttl + 1
                label = f"hop{index + ttl}"
                target = -2  # sentinel: drop, never reaches a box
            else:
                steps = target - index + 1
        else:
            target = self._next_s2c[index + 1] if index >= 0 else -1
            if index - ttl > target:
                steps = ttl + 1
                label = f"hop{index - ttl}"
                target = -2
            else:
                steps = index - target + 1
        when = self.scheduler.now
        delay = self.hop_delay
        for _ in range(steps):
            when += delay
        if target == -2:
            self.scheduler.schedule_at(when, self._drop_expired, (packet, label))
        else:
            self.scheduler.schedule_at(
                when, self._hop, (packet, direction, target, ttl - (steps - 1))
            )

    def _drop_expired(self, packet: Packet, label: str) -> None:
        """Record a TTL-expiry drop inside a coalesced run of inert hops."""
        _PKT_DROP.inc()
        self.trace.record(self.scheduler.now, "drop", label, packet, "ttl expired")

    def _schedule_impaired_hop(
        self, imp: Impairment, packet: Packet, direction: str, index: int, ttl: int
    ) -> None:
        """One link traversal under the impairment policy.

        Draw order is fixed (loss, corrupt, jitter, reorder, dup) and
        each knob only consumes a draw when non-zero, so a given policy
        and net seed always replay the same impaired trace.
        """
        rng = self._net_rng
        now = self.scheduler.now
        label = f"link{index}"
        if imp.loss and rng.random() < imp.loss:
            _IMPAIRMENT_EVENTS.inc(kind="loss", direction=direction)
            self.trace.record(now, "loss", label, packet, "impairment: lost")
            return
        if imp.corrupt and packet.load and rng.random() < imp.corrupt:
            packet, offset = corrupt_payload(packet, rng)
            _IMPAIRMENT_EVENTS.inc(kind="corrupt", direction=direction)
            self.trace.record(
                now, "corrupt", label, packet,
                f"impairment: payload bit flipped at offset {offset}",
            )
        delay = self.hop_delay
        if imp.jitter:
            delay += rng.random() * imp.jitter
        if imp.reorder and rng.random() < imp.reorder:
            delay += imp.reorder_delay
            _IMPAIRMENT_EVENTS.inc(kind="reorder", direction=direction)
            self.trace.record(
                now, "reorder", label, packet,
                f"impairment: held back {imp.reorder_delay * 1000:.1f}ms",
            )
        if imp.dup and rng.random() < imp.dup:
            duplicate = packet.copy()
            _IMPAIRMENT_EVENTS.inc(kind="dup", direction=direction)
            self.trace.record(now, "dup", label, duplicate, "impairment: duplicated")
            self.scheduler.schedule(
                delay + imp.dup_spacing,
                lambda: self._hop(duplicate, direction, index, ttl),
            )
        self.scheduler.schedule(delay, lambda: self._hop(packet, direction, index, ttl))

    def _hop(self, packet: Packet, direction: str, index: int, ttl: int) -> None:
        past_chain = index >= len(self.middleboxes) if direction == DIRECTION_C2S else index < 0
        if past_chain:
            self._deliver(packet, direction, ttl)
            return
        if ttl < 1:
            _PKT_DROP.inc()
            self.trace.record(
                self.scheduler.now, "drop", f"hop{index}", packet, "ttl expired"
            )
            return
        box = self.middleboxes[index]
        ctx = self._contexts[index]
        if _spans.ENABLED:
            t0 = time.perf_counter()
            forwarded = list(box.process(packet, direction, ctx))
            _spans.add(self._box_spans[index], time.perf_counter() - t0)
        else:
            forwarded = list(box.process(packet, direction, ctx))
        next_index = index + 1 if direction == DIRECTION_C2S else index - 1
        if not forwarded:
            _PKT_DROP.inc()
            self.trace.record(self.scheduler.now, "drop", ctx.name, packet, "dropped in-path")
            return
        for out in forwarded:
            self._schedule_hop(out, direction, next_index, ttl - 1)

    def _deliver(self, packet: Packet, direction: str, ttl: int) -> None:
        node = self.server if direction == DIRECTION_C2S else self.client
        if ttl < 1:
            _PKT_DROP.inc()
            self.trace.record(self.scheduler.now, "drop", node.name, packet, "ttl expired")
            return
        _PKT_RECV.inc()
        self.trace.record(self.scheduler.now, "recv", node.name, packet)
        if _spans.ENABLED:
            t0 = time.perf_counter()
            node.receive(packet)
            _spans.add("simulate/endpoint", time.perf_counter() - t0)
        else:
            node.receive(packet)
