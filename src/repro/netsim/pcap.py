"""Export packet traces to libpcap files (and read them back).

Every packet in a trial trace serializes to real IPv4/TCP bytes, so a
trace can be written as a standard pcap capture (LINKTYPE_RAW) and opened
in Wireshark/tcpdump for inspection. Virtual timestamps map directly to
pcap timestamps. A reader is included for round-trip verification.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable, List, Optional, Tuple, Union

from ..packets import Packet
from .trace import Trace

__all__ = ["write_pcap", "read_pcap", "trace_to_pcap_bytes", "PCAP_MAGIC", "LINKTYPE_RAW"]

PCAP_MAGIC = 0xA1B2C3D4
_VERSION_MAJOR = 2
_VERSION_MINOR = 4
#: Raw IPv4/IPv6 link type: each record starts at the IP header.
LINKTYPE_RAW = 101

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")

#: Trace event kinds whose packets represent wire transmissions.
_WIRE_KINDS = ("send", "inject")


def _global_header(snaplen: int = 65535) -> bytes:
    return _GLOBAL_HEADER.pack(
        PCAP_MAGIC, _VERSION_MAJOR, _VERSION_MINOR, 0, 0, snaplen, LINKTYPE_RAW
    )


def _record(timestamp: float, data: bytes) -> bytes:
    seconds = int(timestamp)
    micros = int(round((timestamp - seconds) * 1_000_000))
    if micros >= 1_000_000:
        seconds += 1
        micros -= 1_000_000
    return _RECORD_HEADER.pack(seconds, micros, len(data), len(data)) + data


def trace_to_pcap_bytes(trace: Trace, kinds: Iterable[str] = _WIRE_KINDS) -> bytes:
    """Serialize a trace's wire packets into a pcap byte string.

    ``send`` and ``inject`` events are captured by default (one record per
    transmission, as a sniffer at the sender would see them); ``recv``
    events would duplicate every packet.
    """
    wanted = set(kinds)
    out = io.BytesIO()
    out.write(_global_header())
    for event in trace.events:
        if event.kind in wanted and event.packet is not None:
            out.write(_record(event.time, event.packet.serialize()))
    return out.getvalue()


def write_pcap(
    trace: Trace,
    destination: Union[str, BinaryIO],
    kinds: Iterable[str] = _WIRE_KINDS,
) -> int:
    """Write a trace to a pcap file (path or binary stream).

    Returns the number of packet records written.
    """
    payload = trace_to_pcap_bytes(trace, kinds)
    records = _count_records(payload)
    if isinstance(destination, str):
        with open(destination, "wb") as handle:
            handle.write(payload)
    else:
        destination.write(payload)
    return records


def _count_records(payload: bytes) -> int:
    count = 0
    pos = _GLOBAL_HEADER.size
    while pos + _RECORD_HEADER.size <= len(payload):
        _, _, incl_len, _ = _RECORD_HEADER.unpack_from(payload, pos)
        pos += _RECORD_HEADER.size + incl_len
        count += 1
    return count


def read_pcap(source: Union[str, bytes, BinaryIO]) -> List[Tuple[float, Packet]]:
    """Read a LINKTYPE_RAW pcap back into (timestamp, Packet) pairs."""
    if isinstance(source, str):
        with open(source, "rb") as handle:
            payload = handle.read()
    elif isinstance(source, bytes):
        payload = source
    else:
        payload = source.read()

    if len(payload) < _GLOBAL_HEADER.size:
        raise ValueError("truncated pcap: missing global header")
    magic, major, minor, _, _, _, network = _GLOBAL_HEADER.unpack_from(payload, 0)
    if magic != PCAP_MAGIC:
        raise ValueError(f"bad pcap magic {magic:#x}")
    if network != LINKTYPE_RAW:
        raise ValueError(f"unsupported link type {network}")

    packets: List[Tuple[float, Packet]] = []
    pos = _GLOBAL_HEADER.size
    while pos < len(payload):
        if pos + _RECORD_HEADER.size > len(payload):
            raise ValueError("truncated pcap record header")
        seconds, micros, incl_len, _ = _RECORD_HEADER.unpack_from(payload, pos)
        pos += _RECORD_HEADER.size
        data = payload[pos : pos + incl_len]
        if len(data) < incl_len:
            raise ValueError("truncated pcap record body")
        pos += incl_len
        packets.append((seconds + micros / 1_000_000, Packet.parse(data)))
    return packets
