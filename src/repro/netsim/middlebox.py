"""Middlebox interface for on-path and in-path network elements.

Censors, cellular carrier boxes, and any other path elements implement
:class:`Middlebox`. The network walks each packet through the middleboxes
between its source and destination; a middlebox may forward, drop, modify,
or inject additional packets via the :class:`PathContext` it is handed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List

from ..packets import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .events import Scheduler
    from .network import Network
    from .trace import Trace

__all__ = ["Middlebox", "PathContext", "DIRECTION_C2S", "DIRECTION_S2C"]

DIRECTION_C2S = "c2s"
DIRECTION_S2C = "s2c"


class PathContext:
    """Capabilities the network grants a middlebox while it processes a packet.

    Provides the virtual clock, timer scheduling, packet injection from the
    middlebox's position on the path, and trace recording.
    """

    def __init__(self, network: "Network", position: int, name: str) -> None:
        self._network = network
        self._position = position
        self.name = name

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._network.scheduler.now

    def schedule(self, delay: float, callback: Callable[[], None]):
        """Schedule a callback on the trial's scheduler."""
        return self._network.scheduler.schedule(delay, callback)

    def inject(self, packet: Packet, toward: str) -> None:
        """Inject ``packet`` from this middlebox's position.

        Args:
            packet: The packet to emit (will be copied).
            toward: ``"client"`` or ``"server"``.
        """
        self._network.inject_from(self._position, packet.copy(), toward, self.name)

    def record(self, kind: str, packet: Packet = None, detail: str = "") -> None:
        """Record an event in the trial's trace."""
        self._network.trace.record(self.now, kind, self.name, packet, detail)


class Middlebox:
    """Base class for path elements.

    Subclasses override :meth:`process`. The default implementation forwards
    every packet unmodified, which is what a plain router does.

    Attributes:
        name: Label used in traces.
    """

    name = "middlebox"

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> Iterable[Packet]:
        """Inspect ``packet`` travelling in ``direction``.

        Returns the packets to forward onward; returning an empty list drops
        the packet (in-path behaviour). On-path elements return
        ``[packet]`` and use ``ctx.inject`` for any responses.
        """
        return [packet]

    def reset(self) -> None:
        """Clear per-trial state; called when a middlebox is reused."""


class TransparentTap(Middlebox):
    """A middlebox that records packets but never interferes.

    Useful in tests to observe what crosses a particular hop.
    """

    name = "tap"

    def __init__(self) -> None:
        self.seen: List[Packet] = []

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> Iterable[Packet]:
        self.seen.append(packet.copy())
        return [packet]

    def reset(self) -> None:
        self.seen.clear()
