"""Packet traces for experiments and waterfall rendering.

A :class:`Trace` collects every observable event in a trial — packets sent
and received by the endpoints, censor injections, and drops — with virtual
timestamps. The waterfall renderer in :mod:`repro.eval.waterfall` consumes
these to regenerate the paper's Figure 1 / Figure 2 diagrams.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from ..packets import Packet

__all__ = ["Trace", "TraceEvent", "NullTrace", "RingTrace"]


@dataclass
class TraceEvent:
    """One observable event in a trial.

    Attributes:
        time: Virtual timestamp of the event.
        kind: ``"send"``, ``"recv"``, ``"inject"``, ``"drop"``,
            ``"censor"``, or one of the impairment kinds ``"loss"``,
            ``"dup"``, ``"reorder"``, ``"corrupt"`` (see
            :mod:`repro.netsim.impairment`).
        location: Where it happened (host, middlebox, or link name).
        packet: The packet involved, if any (a defensive copy).
        detail: Free-form annotation (drop reason, censor verdict, ...).
    """

    time: float
    kind: str
    location: str
    packet: Optional[Packet] = None
    detail: str = ""

    def summary(self) -> str:
        """One-line human-readable rendering of this event."""
        packet = f" {self.packet!r}" if self.packet is not None else ""
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:9.4f}] {self.kind:>6} @{self.location}{packet}{detail}"


@dataclass
class Trace:
    """An append-only log of :class:`TraceEvent` items."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(
        self,
        time: float,
        kind: str,
        location: str,
        packet: Optional[Packet] = None,
        detail: str = "",
    ) -> None:
        """Append an event, defensively copying the packet."""
        copied = packet.copy() if packet is not None else None
        self.events.append(TraceEvent(time, kind, location, copied, detail))

    def filter(self, kind: Optional[str] = None, location: Optional[str] = None) -> List[TraceEvent]:
        """Return events matching the given kind and/or location."""
        result = self.events
        if kind is not None:
            result = [event for event in result if event.kind == kind]
        if location is not None:
            result = [event for event in result if event.location == location]
        return list(result)

    def digest(self) -> str:
        """SHA-256 over the full event stream (bit-identity comparisons).

        Covers timestamps, kinds, locations, details, and exact packet
        wire bytes, so two traces share a digest only when every
        observable detail of the two trials matched.
        """
        hasher = hashlib.sha256()
        for event in self.events:
            wire = event.packet.serialize().hex() if event.packet is not None else "-"
            line = f"{event.time:.9f}|{event.kind}|{event.location}|{event.detail}|{wire}\n"
            hasher.update(line.encode("utf-8"))
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self.events)

    def dump(self) -> str:
        """Render the whole trace as text, one event per line."""
        return "\n".join(event.summary() for event in self.events)


class NullTrace(Trace):
    """A trace that records nothing.

    Used by the rate-only fast path (``Trial(capture_trace=False)``):
    every :meth:`record` call — and in particular its per-event defensive
    packet copy — becomes a no-op, and because nothing retains packet
    references the trial can also recycle packets through the arena
    (:mod:`repro.packets.pool`). ``events`` stays an empty list, so all
    read-side methods (filter/digest/dump) work and report emptiness.
    """

    def record(
        self,
        time: float,
        kind: str,
        location: str,
        packet: Optional[Packet] = None,
        detail: str = "",
    ) -> None:
        """Discard the event."""


class RingTrace(Trace):
    """A bounded trace retaining only the most recent events.

    Fleet mode hosts thousands of flows in one world; a full
    :class:`Trace` per flow would accumulate unbounded packet copies.
    The ring keeps the last ``capacity`` events — enough tail to debug a
    verdict — and discards the rest. Because it *does* retain (copied)
    packets, a ring-traced flow is not eligible for arena pooling, same
    rule as a full trace.

    ``digest()`` covers only the retained window, so it is a diagnostic
    fingerprint, not the bit-identity digest of the whole flow; use a
    full :class:`Trace` (fleet ``trace="full"``) for equivalence checks.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events = deque(maxlen=capacity)  # type: ignore[assignment]
        self.dropped = 0

    def record(
        self,
        time: float,
        kind: str,
        location: str,
        packet: Optional[Packet] = None,
        detail: str = "",
    ) -> None:
        """Append an event, evicting the oldest once at capacity."""
        if len(self.events) == self.capacity:
            self.dropped += 1
        copied = packet.copy() if packet is not None else None
        self.events.append(TraceEvent(time, kind, location, copied, detail))

    def filter(self, kind: Optional[str] = None, location: Optional[str] = None) -> List[TraceEvent]:
        """Return retained events matching the given kind/location."""
        result = list(self.events)
        if kind is not None:
            result = [event for event in result if event.kind == kind]
        if location is not None:
            result = [event for event in result if event.location == location]
        return result
