"""Discrete-event network simulator.

Provides the virtual-time :class:`~repro.netsim.events.Scheduler`, the
two-endpoint :class:`~repro.netsim.network.Network` path with middlebox
chains and TTL semantics, the :class:`~repro.netsim.middlebox.Middlebox`
interface censors implement, and packet :class:`~repro.netsim.trace.Trace`
recording for waterfall diagrams.
"""

from .events import Scheduler, Timer
from .flows import FlowHandle, FlowRouter, FlowScheduler
from .impairment import Impairment
from .middlebox import DIRECTION_C2S, DIRECTION_S2C, Middlebox, PathContext, TransparentTap
from .network import Network, NetworkNode
from .pcap import read_pcap, trace_to_pcap_bytes, write_pcap
from .trace import NullTrace, RingTrace, Trace, TraceEvent

__all__ = [
    "DIRECTION_C2S",
    "DIRECTION_S2C",
    "FlowHandle",
    "FlowRouter",
    "FlowScheduler",
    "Impairment",
    "Middlebox",
    "Network",
    "NetworkNode",
    "NullTrace",
    "PathContext",
    "RingTrace",
    "Scheduler",
    "Timer",
    "Trace",
    "TraceEvent",
    "TransparentTap",
    "read_pcap",
    "trace_to_pcap_bytes",
    "write_pcap",
]
