"""Global switch for the cold-path performance fast path.

The fast path bundles several independently-correct optimizations —
inert-hop coalescing in the network walk, trace-free trials, the packet
arena, and the strategy parse cache — behind one switch so that:

- the differential equivalence suite can run the *same* trial with the
  fast path on and off and assert bit-identical behaviour;
- a suspected fast-path bug in the field can be ruled out instantly with
  ``REPRO_FASTPATH=0`` and zero code changes.

The switch is process-wide and read at trial *construction* time, so
toggling it mid-trial has no effect on an already-built network.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = ["enabled", "set_enabled", "disabled"]

_ENABLED = os.environ.get("REPRO_FASTPATH", "1") != "0"


def enabled() -> bool:
    """Whether the cold-path fast path is on (default: yes)."""
    return _ENABLED


def set_enabled(on: bool) -> None:
    """Turn the fast path on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(on)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with the fast path off (restores the prior state)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
