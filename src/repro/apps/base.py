"""Shared application plumbing for protocol clients and servers.

Every protocol in the paper (DNS-over-TCP, FTP, HTTP, HTTPS, SMTP) is
implemented as a client class driving one censored request and a server
class answering it. The client reports a terminal :attr:`outcome`:

- ``"success"`` — the connection survived and the client received the
  correct, unaltered data (the paper's evasion criterion);
- ``"reset"`` — the connection was torn down by an injected RST;
- ``"blockpage"`` — the client received censor-injected content instead;
- ``"garbled"`` — the client received data that fails validation;
- ``"timeout"`` — the exchange never completed (blackholing censors).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..tcpstack import Host, TCPEndpoint

__all__ = [
    "BaseClient",
    "BaseServer",
    "OUTCOME_SUCCESS",
    "OUTCOME_RESET",
    "OUTCOME_BLOCKPAGE",
    "OUTCOME_GARBLED",
    "OUTCOME_TIMEOUT",
]

OUTCOME_SUCCESS = "success"
OUTCOME_RESET = "reset"
OUTCOME_BLOCKPAGE = "blockpage"
OUTCOME_GARBLED = "garbled"
OUTCOME_TIMEOUT = "timeout"

#: Application-level give-up time (virtual seconds).
DEFAULT_APP_TIMEOUT = 8.0


class BaseClient:
    """One client-side attempt at a (possibly censored) request.

    Subclasses implement :meth:`_on_established` (send the first bytes)
    and :meth:`_on_bytes` (consume response data and eventually call
    :meth:`_finish`).
    """

    protocol = "base"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int,
        timeout: float = DEFAULT_APP_TIMEOUT,
    ) -> None:
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.timeout = timeout
        self.endpoint: Optional[TCPEndpoint] = None
        self.buffer = bytearray()
        self.outcome: Optional[str] = None
        self.detail = ""
        self.on_complete: Optional[Callable[[str], None]] = None
        self._timer = None

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Open the connection and begin the exchange."""
        endpoint = self.host.open_connection(self.server_ip, self.server_port)
        endpoint.on_established = self._on_established
        endpoint.on_data = self._on_data
        endpoint.on_reset = lambda: self._finish(OUTCOME_RESET, "connection reset")
        endpoint.on_failure = lambda reason: self._finish(OUTCOME_TIMEOUT, reason)
        endpoint.on_remote_close = self._on_remote_close
        self.endpoint = endpoint
        self._timer = self.host.scheduler.schedule(self.timeout, self._on_timeout)
        endpoint.connect()

    @property
    def finished(self) -> bool:
        """Whether a terminal outcome has been reached."""
        return self.outcome is not None

    @property
    def succeeded(self) -> bool:
        """Whether the exchange completed uncensored with correct data."""
        return self.outcome == OUTCOME_SUCCESS

    # ------------------------------------------------------------------
    # Endpoint callbacks

    def _on_data(self, data: bytes) -> None:
        if self.finished:
            return
        self.buffer.extend(data)
        self._on_bytes()

    def _on_remote_close(self) -> None:
        if not self.finished:
            self._on_peer_closed()

    def _on_timeout(self) -> None:
        self._finish(OUTCOME_TIMEOUT, "application timeout")

    # ------------------------------------------------------------------
    # Subclass interface

    def _on_established(self) -> None:
        """Called when the handshake completes; send the opening bytes."""
        raise NotImplementedError

    def _on_bytes(self) -> None:
        """Called whenever new response bytes are buffered."""
        raise NotImplementedError

    def _on_peer_closed(self) -> None:
        """Called when the server closes before the client finished."""
        self._on_bytes()
        if not self.finished:
            self._finish(OUTCOME_GARBLED, "peer closed mid-exchange")

    # ------------------------------------------------------------------

    def _send(self, data: bytes) -> None:
        if self.endpoint is not None:
            self.endpoint.send(data)

    def _finish(self, outcome: str, detail: str = "") -> None:
        if self.finished:
            return
        self.outcome = outcome
        self.detail = detail
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.on_complete:
            self.on_complete(outcome)


class BaseServer:
    """A protocol server bound to a port on a host.

    Subclasses implement :meth:`_on_connection` to wire per-connection
    state, typically line- or message-buffered request handling.
    """

    protocol = "base"

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.connections: List[TCPEndpoint] = []

    def install(self) -> None:
        """Start listening."""
        self.host.listen(self.port, self._accept)

    def _accept(self, endpoint: TCPEndpoint) -> None:
        self.connections.append(endpoint)
        self._on_connection(endpoint)

    def forget_connection(self, endpoint: TCPEndpoint) -> None:
        """Drop a recycled connection (fleet mode prunes on close).

        Single-flow trials never call this — ``connections`` retains the
        handful of endpoints a trial accepts — but a long-lived fleet
        server would otherwise accumulate one entry per client forever.
        """
        try:
            self.connections.remove(endpoint)
        except ValueError:
            pass

    def _on_connection(self, endpoint: TCPEndpoint) -> None:
        raise NotImplementedError
