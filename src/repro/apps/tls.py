"""Minimal TLS record construction and SNI parsing.

Implements just enough of the TLS 1.2 wire format to reproduce HTTPS
censorship: a structurally valid ClientHello carrying a real Server Name
Indication extension (what the GFW and Iran's DPI match on), a ServerHello
response, and application-data records. Both the censors' SNI extraction
and the client's response validation parse these bytes for real.

The scanning entry points (:func:`scan_tls_handshake`,
:func:`scan_client_hello`) are *incremental*: they understand a handshake
message split across multiple TLS records and report a three-way status —
``complete``, ``needs_more`` (a prefix of a well-formed hello; feed more
bytes), or ``invalid`` (cannot be a well-formed hello no matter how many
bytes follow). Reassembling censors key their give-up/strict-drop
behaviour on that distinction, which is exactly where the record-level
server-side strategies attack.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import List, NamedTuple, Optional

__all__ = [
    "build_client_hello",
    "build_server_hello",
    "build_application_data",
    "parse_sni",
    "parse_esni",
    "scan_tls_handshake",
    "scan_client_hello",
    "split_handshake_records",
    "resplit_first_record",
    "expected_tls_payload",
    "HandshakeScan",
    "ClientHelloScan",
    "SCAN_COMPLETE",
    "SCAN_NEEDS_MORE",
    "SCAN_INVALID",
    "RECORD_HANDSHAKE",
    "RECORD_APPDATA",
    "EXT_ENCRYPTED_SNI",
    "EXT_SERVER_NAME",
    "HANDSHAKE_CLIENT_HELLO",
    "HANDSHAKE_SERVER_HELLO",
]

RECORD_HANDSHAKE = 0x16
RECORD_APPDATA = 0x17
_TLS_VERSION = b"\x03\x03"

HANDSHAKE_CLIENT_HELLO = 1
HANDSHAKE_SERVER_HELLO = 2

_DEFAULT_CIPHERS = [0x1301, 0x1302, 0xC02F, 0xC030, 0x009E]

EXT_SERVER_NAME = 0
#: The (draft) encrypted-SNI extension type. §9 of the paper lists wider
#: ESNI deployment among the evasion techniques regularly rolled out
#: without user participation; a hello carrying ESNI instead of SNI gives
#: DPI nothing to match.
EXT_ENCRYPTED_SNI = 0xFFCE

#: Scan verdicts. ``needs_more`` is the "keep buffering" sentinel a
#: reassembling censor acts on; ``invalid`` means no suffix can complete
#: the bytes into a well-formed hello.
SCAN_COMPLETE = "complete"
SCAN_NEEDS_MORE = "needs_more"
SCAN_INVALID = "invalid"


def _record(record_type: int, body: bytes) -> bytes:
    return struct.pack("!B2sH", record_type, _TLS_VERSION, len(body)) + body


def _handshake(handshake_type: int, body: bytes) -> bytes:
    length = struct.pack("!I", len(body))[1:]
    return struct.pack("!B", handshake_type) + length + body


def build_client_hello(
    server_name: str,
    rng: Optional[random.Random] = None,
    encrypted_sni: bool = False,
) -> bytes:
    """Build a TLS ClientHello record.

    With ``encrypted_sni=True`` the hostname is carried in an (opaque)
    ESNI extension instead of plaintext SNI, so on-path DPI has nothing
    to match — modelling the deployment §9 cites.
    """
    rng = rng or random.Random(0)
    client_random = bytes(rng.getrandbits(8) for _ in range(32))
    ciphers = b"".join(struct.pack("!H", c) for c in _DEFAULT_CIPHERS)
    name = server_name.encode("idna") if server_name else b""
    if encrypted_sni:
        # Opaque blob: name XOR-masked with the hello random (a stand-in
        # for the real ESNI encryption; DPI sees only ciphertext).
        blob = bytes(b ^ client_random[i % 32] for i, b in enumerate(name))
        esni_body = struct.pack("!H", len(blob)) + blob
        sni_ext = struct.pack("!HH", EXT_ENCRYPTED_SNI, len(esni_body)) + esni_body
    else:
        sni_entry = struct.pack("!BH", 0, len(name)) + name
        sni_list = struct.pack("!H", len(sni_entry)) + sni_entry
        sni_ext = struct.pack("!HH", EXT_SERVER_NAME, len(sni_list)) + sni_list
    extensions = struct.pack("!H", len(sni_ext)) + sni_ext
    body = (
        _TLS_VERSION
        + client_random
        + b"\x00"  # empty session id
        + struct.pack("!H", len(ciphers))
        + ciphers
        + b"\x01\x00"  # null compression only
        + extensions
    )
    return _record(RECORD_HANDSHAKE, _handshake(HANDSHAKE_CLIENT_HELLO, body))


def build_server_hello(server_name: str, rng: Optional[random.Random] = None) -> bytes:
    """Build a ServerHello record (deterministic apart from ``rng``)."""
    rng = rng or random.Random(1)
    server_random = bytes(rng.getrandbits(8) for _ in range(32))
    body = (
        _TLS_VERSION
        + server_random
        + b"\x00"
        + struct.pack("!H", _DEFAULT_CIPHERS[0])
        + b"\x00"
    )
    return _record(RECORD_HANDSHAKE, _handshake(HANDSHAKE_SERVER_HELLO, body))


def build_application_data(payload: bytes) -> bytes:
    """Wrap ``payload`` in an application-data record."""
    return _record(RECORD_APPDATA, payload)


def expected_tls_payload(server_name: str) -> bytes:
    """Deterministic application payload the real server returns for a name."""
    digest = hashlib.sha256(server_name.encode()).hexdigest()[:24]
    return f"tls-content:{digest}".encode()


# ----------------------------------------------------------------------
# Record-level transforms (used by tests, docs, and the tlsrecord
# strategy primitives).


def split_handshake_records(data: bytes, chunk_size: int) -> Optional[bytes]:
    """Re-encode one handshake record as several smaller records.

    The classic *record splitting* transform: the record's body is cut
    into ``chunk_size``-byte chunks, each re-wrapped in its own handshake
    record header. The TLS stream is semantically identical (record
    boundaries carry no meaning for handshake reassembly) but grows by
    5 bytes per extra record. Returns ``None`` when ``data`` does not
    start with a complete handshake record.
    """
    if chunk_size <= 0 or len(data) < 5 or data[0] != RECORD_HANDSHAKE:
        return None
    record_len = struct.unpack("!H", data[3:5])[0]
    body = data[5 : 5 + record_len]
    if len(body) < record_len:
        return None
    header = data[:3]
    out = []
    for start in range(0, len(body), chunk_size):
        chunk = body[start : start + chunk_size]
        out.append(header + struct.pack("!H", len(chunk)) + chunk)
    return b"".join(out) + data[5 + record_len :]


def resplit_first_record(data: bytes, offset: int) -> Optional[bytes]:
    """Split the first TLS record at ``offset``, preserving total length.

    Splitting a record normally inserts a second 5-byte record header,
    which would desynchronize TCP sequence space when applied at the wire
    boundary (the stream grows mid-flight). This variant keeps the byte
    count identical by trimming the 5-byte overflow from the tail of the
    second record's body — truncating the carried handshake message, which
    lenient clients tolerate but reassembling DPI cannot complete.
    Returns ``None`` (caller should no-op) when ``data`` does not start
    with a complete record or the offset leaves no room for the trim.
    """
    if len(data) < 5 or offset <= 0:
        return None
    record_len = struct.unpack("!H", data[3:5])[0]
    body = data[5 : 5 + record_len]
    if len(body) < record_len or offset > record_len - 6:
        return None
    header = data[:3]
    first = header + struct.pack("!H", offset) + body[:offset]
    second = header + struct.pack("!H", record_len - offset - 5) + body[offset : record_len - 5]
    return first + second + data[5 + record_len :]


# ----------------------------------------------------------------------
# Incremental scanning (what reassembling censors and the server run).


class HandshakeScan(NamedTuple):
    """Result of scanning a byte stream for one TLS handshake message.

    Attributes:
        status: ``complete`` / ``needs_more`` / ``invalid``.
        message: The assembled handshake message (type + 3-byte length +
            body) when complete, else ``b""``.
        consumed: Stream bytes consumed by the records scanned so far.
    """

    status: str
    message: bytes
    consumed: int


def scan_tls_handshake(data: bytes, expected_type: Optional[int] = None) -> HandshakeScan:
    """Incrementally assemble one handshake message from a record stream.

    Concatenates the bodies of consecutive handshake records until the
    first handshake message's declared length is satisfied — the reassembly
    a ClientHello split across TLS records requires. A non-handshake
    record before the message completes (or a wrong ``expected_type``)
    is ``invalid``; running out of bytes mid-record or mid-message is
    ``needs_more``.
    """
    pos = 0
    body = bytearray()
    while True:
        if body:
            if expected_type is not None and body[0] != expected_type:
                return HandshakeScan(SCAN_INVALID, b"", pos)
            if len(body) >= 4:
                needed = 4 + struct.unpack("!I", b"\x00" + bytes(body[1:4]))[0]
                if len(body) >= needed:
                    return HandshakeScan(SCAN_COMPLETE, bytes(body[:needed]), pos)
        if len(data) - pos < 5:
            return HandshakeScan(SCAN_NEEDS_MORE, b"", pos)
        if data[pos] != RECORD_HANDSHAKE:
            return HandshakeScan(SCAN_INVALID, b"", pos)
        record_len = struct.unpack("!H", data[pos + 3 : pos + 5])[0]
        if len(data) - pos - 5 < record_len:
            return HandshakeScan(SCAN_NEEDS_MORE, b"", pos)
        body += data[pos + 5 : pos + 5 + record_len]
        pos += 5 + record_len


class ClientHelloScan(NamedTuple):
    """Result of scanning a byte stream for a ClientHello.

    Attributes:
        status: ``complete`` / ``needs_more`` / ``invalid``.
        server_name: Decoded plaintext SNI hostname (``None`` when absent
            or when the hello is not complete).
        esni_name: Hostname recovered from the encrypted-SNI extension —
            only meaningful for the *server*, which shares the masking
            secret; censors must ignore it.
        has_esni: Whether an encrypted-SNI extension is present.
        consumed: Stream bytes consumed by the hello's records.
    """

    status: str
    server_name: Optional[str]
    esni_name: Optional[str]
    has_esni: bool
    consumed: int


def _invalid_hello(consumed: int) -> ClientHelloScan:
    return ClientHelloScan(SCAN_INVALID, None, None, False, consumed)


def scan_client_hello(data: bytes) -> ClientHelloScan:
    """Scan ``data`` for a ClientHello, reassembling across records.

    A truncated extension list inside an incomplete message reports
    ``needs_more`` (the hello's declared length is not yet satisfied);
    inconsistent internal lengths inside a *complete* message report
    ``invalid`` — the bytes can never parse, however many follow.
    """
    scan = scan_tls_handshake(data, HANDSHAKE_CLIENT_HELLO)
    if scan.status != SCAN_COMPLETE:
        return ClientHelloScan(scan.status, None, None, False, scan.consumed)
    consumed = scan.consumed
    try:
        hello = scan.message[4:]
        if len(hello) < 35:
            return _invalid_hello(consumed)
        client_random = hello[2:34]
        pos = 34
        pos += 1 + hello[pos]  # session id
        if pos + 2 > len(hello):
            return _invalid_hello(consumed)
        pos += 2 + struct.unpack("!H", hello[pos : pos + 2])[0]  # ciphers
        if pos + 1 > len(hello):
            return _invalid_hello(consumed)
        pos += 1 + hello[pos]  # compression methods
        if pos + 2 > len(hello):
            return _invalid_hello(consumed)
        ext_total = struct.unpack("!H", hello[pos : pos + 2])[0]
        pos += 2
        end = pos + ext_total
        if end > len(hello):
            return _invalid_hello(consumed)
        server_name: Optional[str] = None
        esni_name: Optional[str] = None
        has_esni = False
        while pos + 4 <= end:
            ext_type, ext_len = struct.unpack("!HH", hello[pos : pos + 4])
            pos += 4
            if pos + ext_len > end:
                return _invalid_hello(consumed)
            ext_body = hello[pos : pos + ext_len]
            pos += ext_len
            if ext_type == EXT_SERVER_NAME and server_name is None:
                if len(ext_body) < 5:
                    return _invalid_hello(consumed)
                name_len = struct.unpack("!H", ext_body[3:5])[0]
                name = ext_body[5 : 5 + name_len]
                if len(name) < name_len:
                    return _invalid_hello(consumed)
                server_name = name.decode("idna") if name else ""
            elif ext_type == EXT_ENCRYPTED_SNI:
                has_esni = True
                if len(ext_body) < 2:
                    return _invalid_hello(consumed)
                blob_len = struct.unpack("!H", ext_body[:2])[0]
                blob = ext_body[2 : 2 + blob_len]
                if len(blob) < blob_len:
                    return _invalid_hello(consumed)
                masked = bytes(b ^ client_random[i % 32] for i, b in enumerate(blob))
                esni_name = masked.decode("idna") if masked else ""
        return ClientHelloScan(SCAN_COMPLETE, server_name, esni_name, has_esni, consumed)
    except (struct.error, IndexError, UnicodeError):
        return _invalid_hello(consumed)


def parse_sni(data: bytes) -> Optional[str]:
    """Extract the plaintext SNI hostname from a (possibly partial) hello.

    This is the parser non-reassembling censors run. Returns ``None``
    unless the bytes contain a complete, well-formed ClientHello with a
    plaintext SNI extension — which fails both when the hello is split
    across TCP segments (and the censor cannot reassemble) and when the
    name rides in the encrypted-SNI extension instead. Reassembling
    censors use :func:`scan_client_hello` directly so they can tell
    "feed me more bytes" from "never parseable".
    """
    scan = scan_client_hello(data)
    if scan.status != SCAN_COMPLETE:
        return None
    return scan.server_name


def parse_esni(data: bytes) -> Optional[str]:
    """Recover the hostname from the encrypted-SNI extension.

    Only the *server* can do this (it shares the masking secret — here,
    the hello random as a stand-in); censors see opaque bytes.
    """
    scan = scan_client_hello(data)
    if scan.status != SCAN_COMPLETE:
        return None
    return scan.esni_name
