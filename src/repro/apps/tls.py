"""Minimal TLS record construction and SNI parsing.

Implements just enough of the TLS 1.2 wire format to reproduce HTTPS
censorship: a structurally valid ClientHello carrying a real Server Name
Indication extension (what the GFW and Iran's DPI match on), a ServerHello
response, and application-data records. Both the censors' SNI extraction
and the client's response validation parse these bytes for real.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Optional

__all__ = [
    "build_client_hello",
    "build_server_hello",
    "build_application_data",
    "parse_sni",
    "parse_esni",
    "expected_tls_payload",
    "RECORD_HANDSHAKE",
    "RECORD_APPDATA",
    "EXT_ENCRYPTED_SNI",
    "EXT_SERVER_NAME",
]

RECORD_HANDSHAKE = 0x16
RECORD_APPDATA = 0x17
_TLS_VERSION = b"\x03\x03"

HANDSHAKE_CLIENT_HELLO = 1
HANDSHAKE_SERVER_HELLO = 2

_DEFAULT_CIPHERS = [0x1301, 0x1302, 0xC02F, 0xC030, 0x009E]

EXT_SERVER_NAME = 0
#: The (draft) encrypted-SNI extension type. §9 of the paper lists wider
#: ESNI deployment among the evasion techniques regularly rolled out
#: without user participation; a hello carrying ESNI instead of SNI gives
#: DPI nothing to match.
EXT_ENCRYPTED_SNI = 0xFFCE


def _record(record_type: int, body: bytes) -> bytes:
    return struct.pack("!B2sH", record_type, _TLS_VERSION, len(body)) + body


def _handshake(handshake_type: int, body: bytes) -> bytes:
    length = struct.pack("!I", len(body))[1:]
    return struct.pack("!B", handshake_type) + length + body


def build_client_hello(
    server_name: str,
    rng: Optional[random.Random] = None,
    encrypted_sni: bool = False,
) -> bytes:
    """Build a TLS ClientHello record.

    With ``encrypted_sni=True`` the hostname is carried in an (opaque)
    ESNI extension instead of plaintext SNI, so on-path DPI has nothing
    to match — modelling the deployment §9 cites.
    """
    rng = rng or random.Random(0)
    client_random = bytes(rng.getrandbits(8) for _ in range(32))
    ciphers = b"".join(struct.pack("!H", c) for c in _DEFAULT_CIPHERS)
    name = server_name.encode("idna") if server_name else b""
    if encrypted_sni:
        # Opaque blob: name XOR-masked with the hello random (a stand-in
        # for the real ESNI encryption; DPI sees only ciphertext).
        blob = bytes(b ^ client_random[i % 32] for i, b in enumerate(name))
        esni_body = struct.pack("!H", len(blob)) + blob
        sni_ext = struct.pack("!HH", EXT_ENCRYPTED_SNI, len(esni_body)) + esni_body
    else:
        sni_entry = struct.pack("!BH", 0, len(name)) + name
        sni_list = struct.pack("!H", len(sni_entry)) + sni_entry
        sni_ext = struct.pack("!HH", EXT_SERVER_NAME, len(sni_list)) + sni_list
    extensions = struct.pack("!H", len(sni_ext)) + sni_ext
    body = (
        _TLS_VERSION
        + client_random
        + b"\x00"  # empty session id
        + struct.pack("!H", len(ciphers))
        + ciphers
        + b"\x01\x00"  # null compression only
        + extensions
    )
    return _record(RECORD_HANDSHAKE, _handshake(HANDSHAKE_CLIENT_HELLO, body))


def build_server_hello(server_name: str, rng: Optional[random.Random] = None) -> bytes:
    """Build a ServerHello record (deterministic apart from ``rng``)."""
    rng = rng or random.Random(1)
    server_random = bytes(rng.getrandbits(8) for _ in range(32))
    body = (
        _TLS_VERSION
        + server_random
        + b"\x00"
        + struct.pack("!H", _DEFAULT_CIPHERS[0])
        + b"\x00"
    )
    return _record(RECORD_HANDSHAKE, _handshake(HANDSHAKE_SERVER_HELLO, body))


def build_application_data(payload: bytes) -> bytes:
    """Wrap ``payload`` in an application-data record."""
    return _record(RECORD_APPDATA, payload)


def expected_tls_payload(server_name: str) -> bytes:
    """Deterministic application payload the real server returns for a name."""
    digest = hashlib.sha256(server_name.encode()).hexdigest()[:24]
    return f"tls-content:{digest}".encode()


def _client_hello_parts(data: bytes):
    """Yield (random, ext_type, ext_body) triples from a ClientHello.

    Returns ``None`` (not an iterator) when the bytes are not a complete,
    well-formed ClientHello.
    """
    if len(data) < 5 or data[0] != RECORD_HANDSHAKE:
        return None
    record_len = struct.unpack("!H", data[3:5])[0]
    body = data[5 : 5 + record_len]
    if len(body) < 4 or body[0] != HANDSHAKE_CLIENT_HELLO:
        return None
    hs_len = struct.unpack("!I", b"\x00" + body[1:4])[0]
    hello = body[4 : 4 + hs_len]
    if len(hello) < hs_len:
        return None  # truncated: only part of the hello was seen
    client_random = hello[2 : 2 + 32]
    pos = 2 + 32
    session_len = hello[pos]
    pos += 1 + session_len
    cipher_len = struct.unpack("!H", hello[pos : pos + 2])[0]
    pos += 2 + cipher_len
    comp_len = hello[pos]
    pos += 1 + comp_len
    ext_total = struct.unpack("!H", hello[pos : pos + 2])[0]
    pos += 2
    end = pos + ext_total
    parts = []
    while pos + 4 <= end:
        ext_type, ext_len = struct.unpack("!HH", hello[pos : pos + 4])
        pos += 4
        parts.append((client_random, ext_type, hello[pos : pos + ext_len]))
        pos += ext_len
    return parts


def parse_sni(data: bytes) -> Optional[str]:
    """Extract the plaintext SNI hostname from a (possibly partial) hello.

    This is the parser censors run. Returns ``None`` when the bytes are
    not a well-formed ClientHello containing a complete SNI extension —
    which happens both when the hello is split across TCP segments (and
    the censor cannot reassemble) and when the name rides in the
    encrypted-SNI extension instead.
    """
    try:
        parts = _client_hello_parts(data)
        if parts is None:
            return None
        for _, ext_type, ext_body in parts:
            if ext_type != EXT_SERVER_NAME:
                continue
            if len(ext_body) < 5:
                return None
            name_len = struct.unpack("!H", ext_body[3:5])[0]
            name = ext_body[5 : 5 + name_len]
            if len(name) < name_len:
                return None
            return name.decode("idna")
        return None
    except (struct.error, IndexError, UnicodeError):
        return None


def parse_esni(data: bytes) -> Optional[str]:
    """Recover the hostname from the encrypted-SNI extension.

    Only the *server* can do this (it shares the masking secret — here,
    the hello random as a stand-in); censors see opaque bytes.
    """
    try:
        parts = _client_hello_parts(data)
        if parts is None:
            return None
        for client_random, ext_type, ext_body in parts:
            if ext_type != EXT_ENCRYPTED_SNI:
                continue
            if len(ext_body) < 2:
                return None
            blob_len = struct.unpack("!H", ext_body[:2])[0]
            blob = ext_body[2 : 2 + blob_len]
            if len(blob) < blob_len:
                return None
            name = bytes(b ^ client_random[i % 32] for i, b in enumerate(blob))
            return name.decode("idna")
        return None
    except (struct.error, IndexError, UnicodeError):
        return None
