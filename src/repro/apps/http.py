"""HTTP/1.1 client and server.

Models the paper's HTTP workloads: in China the censored keyword rides in
the URL query parameters (``GET /?q=ultrasurf``); in India, Iran and
Kazakhstan it is a forbidden domain in the ``Host:`` header. The server
returns a deterministic body derived from the request so the client can
verify it received *correct, unaltered* data — the paper's success
criterion — and therefore detect injected block pages.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..tcpstack import Host, TCPEndpoint
from .base import (
    OUTCOME_BLOCKPAGE,
    OUTCOME_GARBLED,
    OUTCOME_SUCCESS,
    BaseClient,
    BaseServer,
)

__all__ = ["HTTPClient", "HTTPServer", "expected_http_body", "BLOCK_PAGE_MARKER"]

#: Marker string censors place in injected block pages.
BLOCK_PAGE_MARKER = "This page has been blocked"


def expected_http_body(path: str, host_header: str) -> bytes:
    """The deterministic body the real server returns for a request.

    Using a digest of the request keeps bodies unique per request, so any
    censor-injected or corrupted content fails validation.
    """
    digest = hashlib.sha256(f"{host_header}{path}".encode()).hexdigest()[:24]
    return f"<html><body>ok:{digest}</body></html>".encode()


class HTTPClient(BaseClient):
    """Issues one HTTP GET and validates the response body."""

    protocol = "http"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 80,
        path: str = "/",
        host_header: str = "example.com",
        timeout: float = 8.0,
    ) -> None:
        super().__init__(host, server_ip, server_port, timeout)
        self.path = path
        self.host_header = host_header

    def request_bytes(self) -> bytes:
        """The full request as sent on the wire."""
        return (
            f"GET {self.path} HTTP/1.1\r\n"
            f"Host: {self.host_header}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()

    def _on_established(self) -> None:
        self._send(self.request_bytes())

    def _on_bytes(self) -> None:
        data = bytes(self.buffer)
        if b"\r\n\r\n" not in data:
            return
        head, _, body = data.partition(b"\r\n\r\n")
        content_length = _content_length(head)
        if content_length is not None and len(body) < content_length:
            return
        self._validate(head, body)

    def _validate(self, head: bytes, body: bytes) -> None:
        if BLOCK_PAGE_MARKER.encode() in body:
            self._finish(OUTCOME_BLOCKPAGE, "censor block page received")
            return
        expected = expected_http_body(self.path, self.host_header)
        if head.startswith(b"HTTP/1.1 200") and body == expected:
            self._finish(OUTCOME_SUCCESS)
        else:
            self._finish(OUTCOME_GARBLED, "response failed validation")

    def _on_peer_closed(self) -> None:
        data = bytes(self.buffer)
        if b"\r\n\r\n" in data:
            head, _, body = data.partition(b"\r\n\r\n")
            self._validate(head, body)
        if not self.finished:
            self._finish(OUTCOME_GARBLED, "closed before response")


class HTTPServer(BaseServer):
    """Minimal HTTP/1.1 server returning deterministic bodies."""

    protocol = "http"

    def _on_connection(self, endpoint: TCPEndpoint) -> None:
        state = {"buffer": bytearray(), "answered": False}

        def on_data(data: bytes) -> None:
            if state["answered"]:
                return
            state["buffer"].extend(data)
            raw = bytes(state["buffer"])
            if b"\r\n\r\n" not in raw:
                return
            state["answered"] = True
            head = raw.split(b"\r\n\r\n", 1)[0]
            request_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
            parts = request_line.split(" ")
            path = parts[1] if len(parts) >= 2 else "/"
            host_header = _header_value(head, b"host") or ""
            body = expected_http_body(path, host_header)
            response = (
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/html\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            endpoint.send(response)
            endpoint.close()

        endpoint.on_data = on_data


def _content_length(head: bytes) -> Optional[int]:
    value = _header_value(head, b"content-length")
    if value is None:
        return None
    try:
        return int(value)
    except ValueError:
        return None


def _header_value(head: bytes, name: bytes) -> Optional[str]:
    for line in head.split(b"\r\n")[1:]:
        if b":" not in line:
            continue
        key, _, value = line.partition(b":")
        if key.strip().lower() == name:
            return value.strip().decode("latin-1", "replace")
    return None
