"""HTTPS client and server over the simplified TLS layer.

The censored trigger is the hostname in the ClientHello's SNI field
(e.g. ``www.wikipedia.org`` in China, ``youtube.com`` in Iran). The client
validates the full expected transcript — ServerHello followed by the
deterministic application payload — so hijacked or corrupted exchanges
fail validation.
"""

from __future__ import annotations

from ..tcpstack import Host, TCPEndpoint
from .base import OUTCOME_GARBLED, OUTCOME_SUCCESS, BaseClient, BaseServer
from .tls import (
    RECORD_APPDATA,
    RECORD_HANDSHAKE,
    build_application_data,
    build_client_hello,
    build_server_hello,
    expected_tls_payload,
    parse_esni,
    parse_sni,
)

__all__ = ["HTTPSClient", "HTTPSServer"]


class HTTPSClient(BaseClient):
    """Performs a TLS exchange with a given SNI and validates the payload."""

    protocol = "https"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 443,
        server_name: str = "example.com",
        timeout: float = 8.0,
        encrypted_sni: bool = False,
    ) -> None:
        super().__init__(host, server_ip, server_port, timeout)
        self.server_name = server_name
        self.encrypted_sni = encrypted_sni

    def request_bytes(self) -> bytes:
        """The ClientHello as sent on the wire."""
        return build_client_hello(
            self.server_name, self.host.rng, encrypted_sni=self.encrypted_sni
        )

    def _on_established(self) -> None:
        self._send(self.request_bytes())

    def _on_bytes(self) -> None:
        records = _split_records(bytes(self.buffer))
        if records is None:
            return  # still incomplete
        saw_server_hello = any(rtype == RECORD_HANDSHAKE for rtype, _ in records)
        payload = b"".join(body for rtype, body in records if rtype == RECORD_APPDATA)
        if not payload:
            return
        if saw_server_hello and payload == expected_tls_payload(self.server_name):
            self._finish(OUTCOME_SUCCESS)
        else:
            self._finish(OUTCOME_GARBLED, "TLS transcript failed validation")


class HTTPSServer(BaseServer):
    """Answers ClientHellos with a ServerHello and deterministic payload."""

    protocol = "https"

    def _on_connection(self, endpoint: TCPEndpoint) -> None:
        state = {"buffer": bytearray(), "answered": False}

        def on_data(data: bytes) -> None:
            if state["answered"]:
                return
            state["buffer"].extend(data)
            raw = bytes(state["buffer"])
            records = _split_records(raw)
            if records is None:
                return
            sni = parse_sni(raw)
            if sni is None:
                sni = parse_esni(raw)  # the server shares the ESNI secret
            if sni is None:
                return
            state["answered"] = True
            # Draw from the endpoint's RNG (the host RNG in a single-flow
            # trial; a per-flow stream on a fleet-mode shared server), so
            # one client's TLS randomness never perturbs another's.
            endpoint.send(build_server_hello(sni, endpoint.rng))
            endpoint.send(build_application_data(expected_tls_payload(sni)))
            endpoint.close()

        endpoint.on_data = on_data


def _split_records(data: bytes):
    """Split a byte stream into complete TLS records.

    Returns ``None`` while the final record is still incomplete, otherwise
    a list of ``(record_type, body)`` tuples.
    """
    records = []
    pos = 0
    while pos < len(data):
        if pos + 5 > len(data):
            return None
        rtype = data[pos]
        length = int.from_bytes(data[pos + 3 : pos + 5], "big")
        if pos + 5 + length > len(data):
            return None
        records.append((rtype, data[pos + 5 : pos + 5 + length]))
        pos += 5 + length
    return records
