"""DNS-over-TCP (RFC 1035 wire format + RFC 7766 transport behaviour).

Implements real DNS message encoding/decoding — censors parse the qname
out of these bytes — and the retry behaviour RFC 7766 prescribes when a
connection closes before the response arrives. §4 of the paper shows the
retries amplify strategy success rates (a 50% strategy reaches ~87.5%
with 3 total tries); the paper standardises on a maximum of 3 tries, as
Python's DNS library does.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, List, Optional

from ..tcpstack import Host
from .base import OUTCOME_GARBLED, OUTCOME_SUCCESS, BaseClient

__all__ = [
    "DNSClient",
    "DNSAttempt",
    "DNSServer",
    "build_query",
    "build_response",
    "parse_query_name",
    "DEFAULT_TRIES",
]

#: Matches the paper's methodology ("we test all of our strategies with a
#: maximum of 3 tries") and Python's DNS library behaviour.
DEFAULT_TRIES = 3

#: Per-application retry behaviour from §4.2: "Some dig versions make
#: only 1 retry, others retry repeatedly ... Python's DNS library tries
#: 3 times over TCP ... Google Chrome on Windows retries 4 times after a
#: censorship event (for a total of 5 requests per page load)."
DNS_CLIENT_PROFILES = {
    "dig-minimal": 2,        # 1 retry
    "dig-persistent": 5,     # "sometimes 3-5 times"
    "python-dns": 3,
    "chrome-windows": 5,     # 4 retries = 5 total requests
}

QTYPE_A = 1
QCLASS_IN = 1


def encode_name(name: str) -> bytes:
    """Encode a dotted hostname as DNS labels."""
    out = bytearray()
    for label in name.rstrip(".").split("."):
        raw = label.encode("idna") if label else b""
        if len(raw) > 63:
            raise ValueError(f"label too long: {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> tuple:
    """Decode a DNS name at ``offset``; returns (name, next_offset)."""
    labels = []
    while True:
        if offset >= len(data):
            raise ValueError("truncated DNS name")
        length = data[offset]
        if length == 0:
            offset += 1
            break
        if length & 0xC0 == 0xC0:
            pointer = struct.unpack("!H", data[offset : offset + 2])[0] & 0x3FFF
            name, _ = decode_name(data, pointer)
            return (".".join(labels + [name]) if labels else name, offset + 2)
        offset += 1
        labels.append(data[offset : offset + length].decode("idna"))
        offset += length
    return ".".join(labels), offset


def build_query(qname: str, txid: int) -> bytes:
    """Build a length-prefixed DNS-over-TCP A query."""
    header = struct.pack("!HHHHHH", txid, 0x0100, 1, 0, 0, 0)
    question = encode_name(qname) + struct.pack("!HH", QTYPE_A, QCLASS_IN)
    message = header + question
    return struct.pack("!H", len(message)) + message


def build_response(qname: str, txid: int, address: str = "93.184.216.34") -> bytes:
    """Build a length-prefixed DNS-over-TCP response with one A record."""
    header = struct.pack("!HHHHHH", txid, 0x8180, 1, 1, 0, 0)
    question = encode_name(qname) + struct.pack("!HH", QTYPE_A, QCLASS_IN)
    rdata = bytes(int(part) for part in address.split("."))
    answer = (
        b"\xc0\x0c"
        + struct.pack("!HHIH", QTYPE_A, QCLASS_IN, 300, len(rdata))
        + rdata
    )
    message = header + question + answer
    return struct.pack("!H", len(message)) + message


def parse_query_name(stream: bytes) -> Optional[str]:
    """Extract the qname from a length-prefixed DNS-over-TCP query.

    This is the parser censors run on client payloads; it returns ``None``
    on truncated input (e.g. when the query is segmented and the censor
    cannot reassemble).
    """
    try:
        if len(stream) < 2:
            return None
        length = struct.unpack("!H", stream[:2])[0]
        message = stream[2 : 2 + length]
        if len(message) < length or length < 12:
            return None
        name, _ = decode_name(message, 12)
        return name
    except (ValueError, struct.error, UnicodeError):
        return None


def parse_answer_address(stream: bytes) -> Optional[str]:
    """Extract the first A-record address from a length-prefixed response.

    Returns ``None`` when the message is malformed or carries no A record.
    Used by clients to detect forged ("lemon") answers.
    """
    try:
        if len(stream) < 2:
            return None
        length = struct.unpack("!H", stream[:2])[0]
        message = stream[2 : 2 + length]
        if len(message) < length or length < 12:
            return None
        _, _, qdcount, ancount = struct.unpack("!HHHH", message[:8])
        offset = 12
        for _ in range(qdcount):
            _, offset = decode_name(message, offset)
            offset += 4  # qtype + qclass
        for _ in range(ancount):
            _, offset = decode_name(message, offset)
            rtype, rclass, _, rdlength = struct.unpack(
                "!HHIH", message[offset : offset + 10]
            )
            offset += 10
            rdata = message[offset : offset + rdlength]
            offset += rdlength
            if rtype == QTYPE_A and rclass == QCLASS_IN and rdlength == 4:
                return ".".join(str(b) for b in rdata)
        return None
    except (ValueError, struct.error):
        return None


def parse_response(stream: bytes, txid: int, qname: str) -> bool:
    """Whether ``stream`` is a complete, correct response to our query."""
    if len(stream) < 2:
        return False
    length = struct.unpack("!H", stream[:2])[0]
    message = stream[2 : 2 + length]
    if len(message) < length or length < 12:
        return False
    rid, flags, qd, an = struct.unpack("!HHHH", message[:8])
    if rid != txid or not flags & 0x8000 or an < 1:
        return False
    try:
        name, _ = decode_name(message, 12)
    except ValueError:
        return False
    return name == qname


class DNSAttempt(BaseClient):
    """A single DNS-over-TCP query attempt on one connection."""

    protocol = "dns"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 53,
        qname: str = "example.com",
        txid: int = 0x1234,
        timeout: float = 8.0,
    ) -> None:
        super().__init__(host, server_ip, server_port, timeout)
        self.qname = qname
        self.txid = txid

    def request_bytes(self) -> bytes:
        """The length-prefixed query as sent on the wire."""
        return build_query(self.qname, self.txid)

    def _on_established(self) -> None:
        self._send(self.request_bytes())

    def _on_bytes(self) -> None:
        stream = bytes(self.buffer)
        if len(stream) < 2:
            return
        expected = struct.unpack("!H", stream[:2])[0] + 2
        if len(stream) < expected:
            return
        if parse_response(stream, self.txid, self.qname):
            self._finish(OUTCOME_SUCCESS)
        else:
            self._finish(OUTCOME_GARBLED, "bad DNS response")


class DNSClient:
    """DNS-over-TCP client with RFC 7766 retries.

    Retries (each on a fresh connection) when an attempt ends in a reset
    or timeout — a censor teardown "qualifies as a premature connection
    close" per the RFC. Exposes the same outcome interface as
    :class:`~repro.apps.base.BaseClient`.
    """

    protocol = "dns"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 53,
        qname: str = "example.com",
        tries: int = DEFAULT_TRIES,
        timeout: float = 8.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.qname = qname
        self.tries = tries
        self.timeout = timeout
        self.rng = rng or host.rng
        self.attempts: List[DNSAttempt] = []
        self.outcome: Optional[str] = None
        self.detail = ""
        self.on_complete: Optional[Callable[[str], None]] = None

    @property
    def finished(self) -> bool:
        """Whether a terminal outcome has been reached."""
        return self.outcome is not None

    @property
    def succeeded(self) -> bool:
        """Whether any attempt received a correct response."""
        return self.outcome == OUTCOME_SUCCESS

    def start(self) -> None:
        """Begin the first attempt."""
        self._attempt()

    def _attempt(self) -> None:
        attempt = DNSAttempt(
            self.host,
            self.server_ip,
            self.server_port,
            qname=self.qname,
            txid=self.rng.randrange(1, 0x10000),
            timeout=self.timeout,
        )
        attempt.on_complete = self._attempt_done
        self.attempts.append(attempt)
        attempt.start()

    def _attempt_done(self, outcome: str) -> None:
        if outcome == OUTCOME_SUCCESS:
            self.outcome = OUTCOME_SUCCESS
            if self.on_complete:
                self.on_complete(outcome)
            return
        if len(self.attempts) < self.tries:
            # RFC 7766: retry unanswered queries on a fresh connection.
            self.host.scheduler.schedule(0.05, self._attempt)
            return
        self.outcome = outcome
        self.detail = self.attempts[-1].detail
        if self.on_complete:
            self.on_complete(outcome)


class DNSServer:
    """Authoritative-for-everything DNS-over-TCP resolver."""

    protocol = "dns"

    def __init__(self, host: Host, port: int = 53) -> None:
        self.host = host
        self.port = port

    def install(self) -> None:
        """Start listening."""
        self.host.listen(self.port, self._accept)

    def _accept(self, endpoint) -> None:
        state = {"buffer": bytearray(), "answered": False}

        def on_data(data: bytes) -> None:
            if state["answered"]:
                return
            state["buffer"].extend(data)
            stream = bytes(state["buffer"])
            if len(stream) < 2:
                return
            expected = struct.unpack("!H", stream[:2])[0] + 2
            if len(stream) < expected:
                return
            txid = struct.unpack("!H", stream[2:4])[0]
            qname = parse_query_name(stream)
            if qname is None:
                return
            state["answered"] = True
            endpoint.send(build_response(qname, txid))
            endpoint.close()

        endpoint.on_data = on_data
