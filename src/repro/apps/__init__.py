"""Application protocols used in the paper's experiments.

One client/server pair per protocol: HTTP, HTTPS (simplified TLS with a
real SNI wire encoding), DNS-over-TCP (real RFC 1035 encoding with
RFC 7766 retries), FTP (control channel), and SMTP. Clients report a
terminal outcome implementing the paper's success criterion: the
connection survives and the correct, unaltered data arrives.
"""

from .base import (
    OUTCOME_BLOCKPAGE,
    OUTCOME_GARBLED,
    OUTCOME_RESET,
    OUTCOME_SUCCESS,
    OUTCOME_TIMEOUT,
    BaseClient,
    BaseServer,
)
from .dns import (
    DEFAULT_TRIES,
    DNSAttempt,
    DNSClient,
    DNSServer,
    build_query,
    build_response,
    parse_query_name,
)
from .ftp import FTPClient, FTPServer, expected_ftp_banner
from .http import BLOCK_PAGE_MARKER, HTTPClient, HTTPServer, expected_http_body
from .https import HTTPSClient, HTTPSServer
from .smtp import FORBIDDEN_ADDRESS, SMTPClient, SMTPServer, expected_smtp_receipt
from .tls import build_client_hello, expected_tls_payload, parse_sni

__all__ = [
    "BLOCK_PAGE_MARKER",
    "BaseClient",
    "BaseServer",
    "DEFAULT_TRIES",
    "DNSAttempt",
    "DNSClient",
    "DNSServer",
    "FORBIDDEN_ADDRESS",
    "FTPClient",
    "FTPServer",
    "HTTPClient",
    "HTTPSClient",
    "HTTPSServer",
    "HTTPServer",
    "OUTCOME_BLOCKPAGE",
    "OUTCOME_GARBLED",
    "OUTCOME_RESET",
    "OUTCOME_SUCCESS",
    "OUTCOME_TIMEOUT",
    "SMTPClient",
    "SMTPServer",
    "build_client_hello",
    "build_query",
    "build_response",
    "expected_ftp_banner",
    "expected_http_body",
    "expected_smtp_receipt",
    "expected_tls_payload",
    "parse_query_name",
    "parse_sni",
]
