"""DNS over UDP: the transport the GFW poisons with forged responses.

A stub resolver accepts the first syntactically valid answer to its query
— so an on-path censor that races a forged ("lemon") response wins every
time (§2.1 background). The client here detects poisoning by comparing
the answered address with the server's true answer, which is how the
reproduction measures UDP DNS censorship and motivates the paper's
DNS-over-TCP workload.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Optional

from ..packets import Packet
from ..tcpstack import Host
from .base import OUTCOME_GARBLED, OUTCOME_SUCCESS, OUTCOME_TIMEOUT
from .dns import build_query, build_response, parse_answer_address, parse_query_name

__all__ = ["DNSOverUDPClient", "DNSOverUDPServer", "OUTCOME_POISONED", "TRUE_ADDRESS"]

#: Extra client outcome: the resolver accepted a forged answer.
OUTCOME_POISONED = "poisoned"

#: The address the genuine server answers with.
TRUE_ADDRESS = "93.184.216.34"


class DNSOverUDPClient:
    """A stub resolver: one UDP query, first valid answer wins."""

    protocol = "dns-udp"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 53,
        qname: str = "example.com",
        timeout: float = 4.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.server_ip = server_ip
        self.server_port = server_port
        self.qname = qname
        self.timeout = timeout
        self.rng = rng or host.rng
        self.txid = self.rng.randrange(1, 0x10000)
        self.outcome: Optional[str] = None
        self.answer: Optional[str] = None
        self.on_complete: Optional[Callable[[str], None]] = None
        self._sport: Optional[int] = None
        self._timer = None

    @property
    def finished(self) -> bool:
        """Whether a terminal outcome has been reached."""
        return self.outcome is not None

    @property
    def succeeded(self) -> bool:
        """Whether the genuine answer was received (and not a forgery)."""
        return self.outcome == OUTCOME_SUCCESS

    def start(self) -> None:
        """Send the query and wait for the first answer."""
        self._sport = self.host.new_port()
        self.host.udp_bind(self._sport, self._on_datagram)
        query = build_query(self.qname, self.txid)[2:]  # no length prefix on UDP
        self.host.send_udp(self.server_ip, self.server_port, query, sport=self._sport)
        self._timer = self.host.scheduler.schedule(self.timeout, self._on_timeout)

    def _on_datagram(self, packet: Packet) -> None:
        if self.finished:
            return  # first answer already accepted — the stub behaviour
        framed = len(packet.load).to_bytes(2, "big") + packet.load
        if len(packet.load) < 2:
            return
        txid = struct.unpack("!H", packet.load[:2])[0]
        if txid != self.txid:
            return  # not an answer to our query
        self.answer = parse_answer_address(framed)
        if self.answer is None:
            self._finish(OUTCOME_GARBLED)
        elif self.answer == TRUE_ADDRESS:
            self._finish(OUTCOME_SUCCESS)
        else:
            self._finish(OUTCOME_POISONED)

    def _on_timeout(self) -> None:
        self._finish(OUTCOME_TIMEOUT)

    def _finish(self, outcome: str) -> None:
        if self.finished:
            return
        self.outcome = outcome
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.on_complete:
            self.on_complete(outcome)


class DNSOverUDPServer:
    """A genuine resolver answering every query with :data:`TRUE_ADDRESS`."""

    protocol = "dns-udp"

    def __init__(self, host: Host, port: int = 53) -> None:
        self.host = host
        self.port = port
        self.queries_answered = 0

    def install(self) -> None:
        """Start answering queries on the bound port."""
        self.host.udp_bind(self.port, self._on_datagram)

    def _on_datagram(self, packet: Packet) -> None:
        framed = len(packet.load).to_bytes(2, "big") + packet.load
        qname = parse_query_name(framed)
        if qname is None or len(packet.load) < 2:
            return
        txid = struct.unpack("!H", packet.load[:2])[0]
        response = build_response(qname, txid, address=TRUE_ADDRESS)[2:]
        self.queries_answered += 1
        self.host.send_udp(packet.src, packet.sport, response, sport=self.port)
