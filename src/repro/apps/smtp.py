"""SMTP client and server.

Reproduces the paper's SMTP workload: an unmodified client sends an email
to a forbidden address (``xiazai@upup.info``, the address the GFW is known
to censor). The censored keyword rides in the ``RCPT TO`` command.
"""

from __future__ import annotations

import hashlib

from ..tcpstack import Host, TCPEndpoint
from .base import OUTCOME_GARBLED, OUTCOME_SUCCESS, BaseClient, BaseServer

__all__ = ["SMTPClient", "SMTPServer", "expected_smtp_receipt", "FORBIDDEN_ADDRESS"]

#: The censored recipient from the paper's methodology (§4.2).
FORBIDDEN_ADDRESS = "xiazai@upup.info"


def expected_smtp_receipt(recipient: str) -> str:
    """Deterministic queue id the real server returns after DATA."""
    digest = hashlib.sha256(recipient.encode()).hexdigest()[:16]
    return f"250 OK queued as {digest}"


class SMTPClient(BaseClient):
    """Delivers one message to a (possibly forbidden) recipient."""

    protocol = "smtp"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 25,
        recipient: str = FORBIDDEN_ADDRESS,
        timeout: float = 8.0,
    ) -> None:
        super().__init__(host, server_ip, server_port, timeout)
        self.recipient = recipient
        self._consumed = 0
        self._stage = "greeting"

    def request_bytes(self) -> bytes:
        """The censored command of this exchange (the RCPT line)."""
        return f"RCPT TO:<{self.recipient}>\r\n".encode()

    def _on_established(self) -> None:
        pass  # SMTP servers speak first (220 greeting).

    def _on_bytes(self) -> None:
        for line in self._new_lines():
            code = line[:3]
            if self._stage == "greeting" and code == "220":
                self._send(b"HELO client.example\r\n")
                self._stage = "helo"
            elif self._stage == "helo" and code == "250":
                self._send(b"MAIL FROM:<sender@example.com>\r\n")
                self._stage = "mail"
            elif self._stage == "mail" and code == "250":
                self._send(self.request_bytes())
                self._stage = "rcpt"
            elif self._stage == "rcpt" and code == "250":
                self._send(b"DATA\r\n")
                self._stage = "data"
            elif self._stage == "data" and code == "354":
                self._send(b"Subject: hello\r\n\r\nmessage body\r\n.\r\n")
                self._stage = "sent"
            elif self._stage == "sent" and code == "250":
                if line == expected_smtp_receipt(self.recipient):
                    self._finish(OUTCOME_SUCCESS)
                else:
                    self._finish(OUTCOME_GARBLED, "receipt mismatch")
            else:
                self._finish(OUTCOME_GARBLED, f"unexpected reply {line!r}")

    def _new_lines(self):
        raw = bytes(self.buffer)
        while not self.finished:
            end = raw.find(b"\r\n", self._consumed)
            if end < 0:
                return
            line = raw[self._consumed : end].decode("latin-1", "replace")
            self._consumed = end + 2
            yield line


class SMTPServer(BaseServer):
    """Minimal SMTP server that accepts one message."""

    protocol = "smtp"

    def _on_connection(self, endpoint: TCPEndpoint) -> None:
        state = {
            "buffer": bytearray(),
            "consumed": 0,
            "in_data": False,
            "recipient": "",
        }
        endpoint.send(b"220 repro SMTP service ready\r\n")

        def on_data(data: bytes) -> None:
            state["buffer"].extend(data)
            raw = bytes(state["buffer"])
            while True:
                end = raw.find(b"\r\n", state["consumed"])
                if end < 0:
                    return
                line = raw[state["consumed"] : end].decode("latin-1", "replace")
                state["consumed"] = end + 2
                _handle(line)

        def _handle(line: str) -> None:
            if state["in_data"]:
                if line == ".":
                    state["in_data"] = False
                    receipt = expected_smtp_receipt(state["recipient"])
                    endpoint.send(receipt.encode() + b"\r\n")
                    endpoint.close()
                return
            verb = line.split(":")[0].split(" ")[0].upper()
            if verb == "HELO" or verb == "EHLO":
                endpoint.send(b"250 repro greets you\r\n")
            elif verb == "MAIL":
                endpoint.send(b"250 OK\r\n")
            elif verb == "RCPT":
                state["recipient"] = line.partition(":")[2].strip().strip("<>")
                endpoint.send(b"250 OK\r\n")
            elif verb == "DATA":
                state["in_data"] = True
                endpoint.send(b"354 End data with <CR><LF>.<CR><LF>\r\n")
            elif verb == "QUIT":
                endpoint.send(b"221 Bye\r\n")
                endpoint.close()
            else:
                endpoint.send(b"502 Command not implemented\r\n")

        endpoint.on_data = on_data
