"""FTP control-channel client and server.

Reproduces the paper's FTP workload: the client signs into an
FTP server and issues a ``RETR`` for a file whose name contains a
sensitive keyword (e.g. ``ultrasurf``), which is what triggers the GFW's
FTP censorship box. Only the control channel is modelled — the censored
keyword rides in the ``RETR`` command itself.
"""

from __future__ import annotations

import hashlib

from ..tcpstack import Host, TCPEndpoint
from .base import OUTCOME_GARBLED, OUTCOME_SUCCESS, BaseClient, BaseServer

__all__ = ["FTPClient", "FTPServer", "expected_ftp_banner"]


def expected_ftp_banner(filename: str) -> str:
    """Deterministic completion line the real server sends for a RETR."""
    digest = hashlib.sha256(filename.encode()).hexdigest()[:16]
    return f"226 Transfer complete {digest}"


class FTPClient(BaseClient):
    """Signs in and retrieves one (sensitively-named) file."""

    protocol = "ftp"

    def __init__(
        self,
        host: Host,
        server_ip: str,
        server_port: int = 21,
        filename: str = "ultrasurf.txt",
        timeout: float = 8.0,
    ) -> None:
        super().__init__(host, server_ip, server_port, timeout)
        self.filename = filename
        self._consumed = 0

    def request_bytes(self) -> bytes:
        """The censored command of this exchange (the RETR line)."""
        return f"RETR {self.filename}\r\n".encode()

    def _on_established(self) -> None:
        pass  # FTP servers speak first (220 banner).

    def _on_bytes(self) -> None:
        for line in self._new_lines():
            code = line[:3]
            if code == "220":
                self._send(b"USER anonymous\r\n")
            elif code == "331":
                self._send(b"PASS guest\r\n")
            elif code == "230":
                self._send(self.request_bytes())
            elif code == "150":
                continue  # transfer starting
            elif code == "226":
                if line == expected_ftp_banner(self.filename):
                    self._finish(OUTCOME_SUCCESS)
                else:
                    self._finish(OUTCOME_GARBLED, "transfer banner mismatch")
            else:
                self._finish(OUTCOME_GARBLED, f"unexpected reply {line!r}")

    def _new_lines(self):
        raw = bytes(self.buffer)
        while not self.finished:
            end = raw.find(b"\r\n", self._consumed)
            if end < 0:
                return
            line = raw[self._consumed : end].decode("latin-1", "replace")
            self._consumed = end + 2
            yield line


class FTPServer(BaseServer):
    """Control-channel-only FTP server accepting anonymous sign-in."""

    protocol = "ftp"

    def _on_connection(self, endpoint: TCPEndpoint) -> None:
        state = {"buffer": bytearray(), "consumed": 0, "authed": False}
        endpoint.send(b"220 repro FTP server ready\r\n")

        def on_data(data: bytes) -> None:
            state["buffer"].extend(data)
            raw = bytes(state["buffer"])
            while True:
                end = raw.find(b"\r\n", state["consumed"])
                if end < 0:
                    return
                line = raw[state["consumed"] : end].decode("latin-1", "replace")
                state["consumed"] = end + 2
                _handle(line)

        def _handle(line: str) -> None:
            verb, _, arg = line.partition(" ")
            verb = verb.upper()
            if verb == "USER":
                endpoint.send(b"331 Password required\r\n")
            elif verb == "PASS":
                state["authed"] = True
                endpoint.send(b"230 Login successful\r\n")
            elif verb == "RETR":
                if not state["authed"]:
                    endpoint.send(b"530 Not logged in\r\n")
                    return
                endpoint.send(b"150 Opening data connection\r\n")
                endpoint.send(expected_ftp_banner(arg).encode() + b"\r\n")
                endpoint.close()
            elif verb == "QUIT":
                endpoint.send(b"221 Goodbye\r\n")
                endpoint.close()
            else:
                endpoint.send(b"502 Command not implemented\r\n")

        endpoint.on_data = on_data
