"""Per-client strategy selection (§8: "Which Strategies to Use?").

A deployed server must pick the right strategy per client, "based only on
the client's SYN packet". :class:`GeoStrategySelector` implements the
paper's suggested approach: coarse IP-prefix geolocation mapped to a
per-(country, protocol) strategy table. :class:`PerClientEngine` is the
host filter that makes the decision at SYN time and applies the selected
strategy to that connection only — clients outside censored prefixes see
completely vanilla TCP.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..core import Strategy, deployed_strategy
from ..packets import Packet
from ..tcpstack import Host

__all__ = [
    "GeoStrategySelector",
    "PerClientEngine",
    "RECOMMENDED_STRATEGIES",
    "install_per_client",
    "parse_cidr",
]

#: Best Table 2 strategy per (country, protocol).
RECOMMENDED_STRATEGIES: Dict[Tuple[str, str], int] = {
    ("china", "dns"): 1,     # 89%
    ("china", "ftp"): 5,     # 97%
    ("china", "http"): 1,    # 54%
    ("china", "https"): 2,   # 55%
    ("china", "smtp"): 8,    # 100%
    ("india", "http"): 8,    # 100%
    ("iran", "http"): 8,     # 100%
    ("iran", "https"): 8,    # 100%
    ("kazakhstan", "http"): 11,  # 100%, no payload quirks
    # SNI-era boxes (eval/sni_matrix.py grid, not Table 2):
    ("southkorea", "https"): 12,  # record split beats the confirm step
    ("russia", "https"): 15,      # only deep migration outlasts TSPU
}


def _ip_to_int(address: str) -> int:
    parts = [int(p) for p in address.split(".")]
    if len(parts) != 4 or any(p < 0 or p > 255 for p in parts):
        raise ValueError(f"invalid IPv4 address {address!r}")
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3]


def parse_cidr(cidr: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` into (network, mask) integers."""
    address, _, length_text = cidr.partition("/")
    length = int(length_text) if length_text else 32
    if not 0 <= length <= 32:
        raise ValueError(f"invalid prefix length in {cidr!r}")
    mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
    return _ip_to_int(address) & mask, mask


class GeoStrategySelector:
    """Longest-prefix-match geolocation plus a strategy table.

    Use :meth:`add_prefix` to register censored-country prefixes, then
    :meth:`strategy_for` to pick a strategy from a client SYN.
    """

    def __init__(
        self, table: Optional[Dict[Tuple[str, str], int]] = None
    ) -> None:
        self._prefixes: List[Tuple[int, int, int, str]] = []  # net, mask, len, country
        self.table = dict(table if table is not None else RECOMMENDED_STRATEGIES)

    def add_prefix(self, cidr: str, country: str) -> None:
        """Register a client prefix as belonging to a censored country."""
        network, mask = parse_cidr(cidr)
        length = bin(mask).count("1")
        self._prefixes.append((network, mask, length, country))
        self._prefixes.sort(key=lambda item: -item[2])  # longest prefix first

    def country_for(self, address: str) -> Optional[str]:
        """The censored country a client address geolocates to, if any."""
        value = _ip_to_int(address)
        for network, mask, _, country in self._prefixes:
            if value & mask == network:
                return country
        return None

    def strategy_for(self, client_ip: str, protocol: str) -> Optional[Strategy]:
        """Pick a strategy for one client, or ``None`` (no evasion needed)."""
        country = self.country_for(client_ip)
        if country is None:
            return None
        number = self.table.get((country, protocol))
        if number is None:
            return None
        return deployed_strategy(number)


class PerClientEngine:
    """Host filters applying a per-connection strategy chosen at SYN time.

    Installed on the server host: the inbound filter watches client SYNs
    and records the selector's decision per flow; the outbound filter
    applies the recorded strategy to the server's replies on that flow
    (and passes every other flow's packets through untouched).
    """

    def __init__(
        self,
        selector: GeoStrategySelector,
        protocol: str,
        rng: Optional[random.Random] = None,
        rng_provider: Optional[Callable[[str], random.Random]] = None,
        port_protocols: Optional[Dict[int, str]] = None,
    ) -> None:
        self.selector = selector
        self.protocol = protocol
        self.rng = rng if rng is not None else random.Random(0)
        #: Optional per-client RNG streams (fleet mode): maps a client
        #: address to the RNG used when applying that client's strategy,
        #: so concurrent flows draw from independent seeded streams. When
        #: unset, the single shared ``rng`` is used (single-flow trials).
        self.rng_provider = rng_provider
        #: Optional multi-protocol serving (fleet mode): maps a listening
        #: port to the protocol name used for the strategy-table lookup,
        #: falling back to the engine-wide ``protocol``.
        self.port_protocols = dict(port_protocols or {})
        self.decisions: Dict[tuple, Optional[Strategy]] = {}

    def _protocol_for(self, port: int) -> str:
        return self.port_protocols.get(port, self.protocol)

    def _rng_for(self, client_ip: str) -> random.Random:
        if self.rng_provider is not None:
            return self.rng_provider(client_ip)
        return self.rng

    def inbound_filter(self, packet: Packet) -> List[Packet]:
        """Record the strategy decision when a client SYN arrives."""
        if packet.tcp.is_syn:
            key = (packet.src, packet.sport, packet.dport)
            if key not in self.decisions:
                self.decisions[key] = self.selector.strategy_for(
                    packet.src, self._protocol_for(packet.dport)
                )
        return [packet]

    def outbound_filter(self, packet: Packet) -> List[Packet]:
        """Apply the recorded strategy to this flow's server packets."""
        key = (packet.dst, packet.dport, packet.sport)
        strategy = self.decisions.get(key)
        if strategy is None:
            return [packet]
        return strategy.apply_outbound(packet, self._rng_for(packet.dst))

    def forget_client(self, client_ip: str) -> None:
        """Drop every recorded decision for one client (flow recycled)."""
        stale = [key for key in self.decisions if key[0] == client_ip]
        for key in stale:
            del self.decisions[key]


def install_per_client(
    host: Host,
    selector: GeoStrategySelector,
    protocol: str,
    rng: Optional[random.Random] = None,
) -> PerClientEngine:
    """Attach a :class:`PerClientEngine` to a server host."""
    engine = PerClientEngine(selector, protocol, rng)
    host.inbound_filters.append(engine.inbound_filter)
    host.outbound_filters.append(engine.outbound_filter)
    return engine
