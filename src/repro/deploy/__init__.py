"""Deployment considerations (§8): where to run strategies, and for whom.

- :class:`~repro.deploy.middlebox.StrategyMiddlebox` — run a strategy at
  any point on the path between the censor and the server (reverse proxy,
  CDN, TapDance-style middlebox).
- :class:`~repro.deploy.selector.GeoStrategySelector` /
  :class:`~repro.deploy.selector.PerClientEngine` — choose a strategy per
  client from its SYN via coarse IP geolocation, applying evasion only to
  clients inside censored prefixes.
"""

from .middlebox import StrategyMiddlebox
from .selector import (
    RECOMMENDED_STRATEGIES,
    GeoStrategySelector,
    PerClientEngine,
    install_per_client,
    parse_cidr,
)

__all__ = [
    "GeoStrategySelector",
    "PerClientEngine",
    "RECOMMENDED_STRATEGIES",
    "StrategyMiddlebox",
    "install_per_client",
    "parse_cidr",
]
