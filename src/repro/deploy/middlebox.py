"""Mid-path strategy deployment (§8: "Where to Deploy?").

The paper notes the strategies "could be deployed at any point in the
path between the censor and the server" — a reverse proxy or CDN, a
hosting platform, or a TapDance-style middlebox manipulating packets in
flight. :class:`StrategyMiddlebox` is that deployment: a path element
that applies a Geneva strategy to server-to-client packets as they pass.

It must sit between the censor and the server (the transformation has to
be in place before the censor sees the packets); the evaluation topology
places it at a configurable hop.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core import Strategy
from ..netsim import DIRECTION_S2C, Middlebox, PathContext
from ..packets import Packet

__all__ = ["StrategyMiddlebox"]


class StrategyMiddlebox(Middlebox):
    """Applies a server-side strategy to in-flight traffic.

    Attributes:
        strategy: The Geneva strategy to enforce.
        packets_rewritten: Count of packets the strategy transformed.
    """

    name = "strategy-proxy"

    def __init__(self, strategy: Strategy, rng: Optional[random.Random] = None) -> None:
        self.strategy = strategy
        self.rng = rng if rng is not None else random.Random(0)
        self.packets_rewritten = 0

    def process(self, packet: Packet, direction: str, ctx: PathContext) -> List[Packet]:
        if direction != DIRECTION_S2C:
            # Client-to-server traffic passes untouched; the strategies
            # only manipulate what the server (appears to) send.
            return [packet]
        out = self.strategy.apply_outbound(packet, self.rng)
        if len(out) != 1 or out[0] is not packet:
            self.packets_rewritten += 1
        return out

    def reset(self) -> None:
        self.packets_rewritten = 0
