"""Batch trial-execution runtime: specs, executor, cache, seeds.

This is the scaling substrate every evaluation module funnels through:

- :class:`~repro.runtime.spec.TrialSpec` — one trial as picklable data
  with a canonical content hash;
- :class:`~repro.runtime.executor.TrialExecutor` — fans spec batches out
  over a process pool (or runs them in-process for ``workers=1``) and
  reports :class:`~repro.runtime.executor.RunStats`;
- :class:`~repro.runtime.cache.ResultCache` — content-addressed result
  store (in-memory LRU + optional ``.repro_cache/`` disk layer);
- :func:`~repro.runtime.seeds.trial_seed` — the single per-trial seed
  derivation shared by the serial and parallel paths.
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache, resolve_cache
from .executor import RunStats, TrialExecutor
from .seeds import fleet_stream_seed, net_stream_seed, splitmix64, trial_seed
from .spec import SpecError, TrialSpec, strategy_text

__all__ = [
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "RunStats",
    "SpecError",
    "TrialExecutor",
    "TrialSpec",
    "fleet_stream_seed",
    "net_stream_seed",
    "resolve_cache",
    "splitmix64",
    "strategy_text",
    "trial_seed",
]
