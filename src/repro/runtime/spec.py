"""Picklable trial descriptions.

A :class:`TrialSpec` captures *everything* that determines a trial's
outcome — country, protocol, the strategy DSL strings, the seed, and any
extra :class:`~repro.eval.runner.Trial` options — as plain JSON-able
data. That buys three things at once:

- specs can cross a ``multiprocessing`` boundary to worker processes;
- specs have a canonical string form, so a content-addressed cache can
  key results on ``sha256(canonical_key)``;
- serial and parallel execution run literally the same description, so
  parity is structural rather than hoped-for.

Strategies are carried as their Geneva DSL strings (``str(strategy)``
round-trips by construction — see ``tests/core/test_parser_property.py``),
which is also what makes the cache key stable across processes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..obs.metrics import Counter

__all__ = ["SpecError", "TrialSpec", "impairment_dict", "strategy_text"]

#: Every executed trial, by target and outcome. Deterministic: the same
#: spec batch yields the same tallies whatever the worker count.
_TRIAL_OUTCOMES = Counter(
    "repro_trial_outcomes_total",
    "Trials executed, by country/protocol/outcome/evasion-success",
    ("country", "protocol", "outcome", "succeeded"),
)


class SpecError(ValueError):
    """Raised when trial arguments cannot be represented as a spec
    (e.g. a live censor instance or middlebox objects were passed)."""


#: Parsed-strategy memo keyed by DSL text. A batch of trials re-parses
#: the same handful of strategy strings thousands of times; parsed
#: strategies are never mutated after construction (the GA copies before
#: mutating), so sharing one instance is safe. Consulted only when the
#: fast path is enabled so ``REPRO_FASTPATH=0`` rules it out too.
_PARSE_CACHE: dict = {}
_PARSE_CACHE_MAX = 512


def _parse_strategy(text: str):
    from .. import fastpath
    from ..core import Strategy

    if not fastpath.enabled():
        return Strategy.parse(text)
    strategy = _PARSE_CACHE.get(text)
    if strategy is None:
        strategy = Strategy.parse(text)
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = strategy
    return strategy


def _copy_tree(value: Any) -> Any:
    """Deep-copy a JSON tree (much cheaper than ``copy.deepcopy``).

    Spec options are validated JSON-able at build time, so the only
    containers are dicts/lists/tuples and every leaf is an immutable
    scalar that can be shared.
    """
    if isinstance(value, dict):
        return {key: _copy_tree(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_tree(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_copy_tree(item) for item in value)
    return value


def strategy_text(strategy: Any) -> Optional[str]:
    """Canonical DSL text for a strategy argument (str/Strategy/None)."""
    if strategy is None:
        return None
    if isinstance(strategy, str):
        return strategy
    text = str(strategy)
    if not hasattr(strategy, "apply_outbound"):
        raise SpecError(f"not a strategy: {strategy!r}")
    return text


def impairment_dict(value: Any) -> Optional[Dict[str, Any]]:
    """Canonical minimal dict for an ``impairment=`` argument.

    Accepts ``None``, an :class:`repro.netsim.Impairment`, or a dict of
    knobs (validated). Null policies (all knobs zero) collapse to
    ``None`` so they share the unimpaired spec's cache key.
    """
    if value is None:
        return None
    from ..netsim import Impairment

    try:
        policy = Impairment.from_value(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"bad impairment: {exc}") from None
    if policy.is_null():
        return None
    return policy.as_dict()


def _ensure_jsonable(value: Any, path: str) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _ensure_jsonable(item, f"{path}[{i}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpecError(f"non-string key {key!r} at {path}")
            _ensure_jsonable(item, f"{path}.{key}")
        return
    raise SpecError(f"option {path} = {value!r} is not JSON-representable")


@dataclass
class TrialSpec:
    """One trial, fully described as picklable data.

    Attributes:
        country: Censor country or ``None`` for no censor.
        protocol: Application protocol (``"http"``, ``"dns"``, ...).
        server_strategy: Server-side strategy DSL text, or ``None``.
        seed: The exact per-trial seed (already derived; specs do not
            fan seeds out themselves).
        client_strategy: Client-side strategy DSL text, or ``None``.
        impairment: Canonical network-impairment dict (see
            :class:`repro.netsim.Impairment`), or ``None`` for a perfect
            path. Part of the canonical key — impaired results can never
            be served for unimpaired specs or vice versa. ``None`` is
            *omitted* from the canonical form, so pre-impairment cache
            entries stay addressable (cache-key schema v2, additive).
        options: Extra keyword arguments for
            :class:`~repro.eval.runner.Trial` (JSON-able values only).
    """

    country: Optional[str]
    protocol: str
    server_strategy: Optional[str] = None
    seed: int = 0
    client_strategy: Optional[str] = None
    options: Dict[str, Any] = field(default_factory=dict)
    impairment: Optional[Dict[str, Any]] = None

    @classmethod
    def build(
        cls,
        country: Optional[str],
        protocol: str,
        server_strategy: Any = None,
        seed: int = 0,
        client_strategy: Any = None,
        impairment: Any = None,
        **kwargs: Any,
    ) -> "TrialSpec":
        """Build a spec from ``run_trial``-style arguments.

        ``impairment`` accepts an :class:`repro.netsim.Impairment`, its
        dict form, or ``None``; it is canonicalized (minimal sorted
        dict, null policies collapse to ``None``) so equal policies
        always hash equally.

        Raises :class:`SpecError` when any argument cannot be expressed
        as picklable data (callers then fall back to in-process
        execution with live objects).
        """
        _ensure_jsonable(kwargs, "options")
        return cls(
            country=country,
            protocol=protocol,
            server_strategy=strategy_text(server_strategy),
            seed=seed,
            client_strategy=strategy_text(client_strategy),
            options=dict(kwargs),
            impairment=impairment_dict(impairment),
        )

    # ------------------------------------------------------------------
    # Canonical form / hashing

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (also the multiprocessing payload).

        The ``impairment`` key is present only when set: unimpaired
        specs keep the exact canonical form (and therefore cache keys)
        they had before the impairment layer existed.
        """
        out = {
            "country": self.country,
            "protocol": self.protocol,
            "server_strategy": self.server_strategy,
            "client_strategy": self.client_strategy,
            "seed": self.seed,
            "options": self.options,
        }
        if self.impairment is not None:
            out["impairment"] = self.impairment
        return out

    def canonical_key(self) -> str:
        """Deterministic string form: sorted-key compact JSON."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """Content address of this spec (SHA-256 of the canonical key)."""
        return hashlib.sha256(self.canonical_key().encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Execution

    def run(self, keep_trace: bool = False):
        """Execute this trial and return its :class:`TrialResult`.

        The packet trace is dropped unless ``keep_trace`` is set: traces
        hold full packet copies, which batch consumers never need and
        which must not cross process or cache boundaries.

        Execution is bracketed into observability phases (spec decode,
        trial build, simulate, finalize) — timed only when span
        profiling is on — and reports outcome counters to the active
        metrics registry. If the trial raises and a run log is active,
        the tail of the packet trace is flight-dumped before the
        exception propagates.
        """
        from .. import fastpath
        from ..eval.runner import Trial
        from ..obs import runlog as obs_runlog
        from ..obs import spans
        from ..packets import pool

        # The rate-only fast path: nobody wants the trace, the global
        # switch is on, and no run log is active (a flight dump on error
        # needs the trace). The trial then skips trace capture entirely
        # and recycles packets through the arena. ``capture_trace`` is
        # deliberately NOT part of the spec options — it cannot change
        # the verdict, so it must not change the cache key either.
        use_fast = (
            not keep_trace
            and fastpath.enabled()
            and obs_runlog.active_runlog() is None
        )
        with spans.span("trial"):
            with spans.span("trial/spec_decode"):
                server = (
                    _parse_strategy(self.server_strategy)
                    if self.server_strategy is not None
                    else None
                )
                # Deep copy: Trial mutates nested options (e.g. it writes
                # the DNS try count into the workload dict), and the spec
                # must stay byte-stable so its content hash is the same
                # before and after execution.
                kwargs = _copy_tree(self.options)
                if self.client_strategy is not None:
                    kwargs["client_strategy"] = _parse_strategy(self.client_strategy)
                if self.impairment is not None:
                    kwargs["impairment"] = dict(self.impairment)
                if use_fast and "capture_trace" not in kwargs:
                    kwargs["capture_trace"] = False
            if use_fast:
                # Exceptions propagate; the pooled block abandons (never
                # reuses) in-flight packets on the error path.
                with pool.pooled():
                    with spans.span("trial/build"):
                        trial = Trial(
                            self.country, self.protocol, server, seed=self.seed, **kwargs
                        )
                    with spans.span("trial/simulate", clock=trial.scheduler):
                        result = trial.run()
            else:
                with spans.span("trial/build"):
                    trial = Trial(
                        self.country, self.protocol, server, seed=self.seed, **kwargs
                    )
                try:
                    with spans.span("trial/simulate", clock=trial.scheduler):
                        result = trial.run()
                except Exception as exc:
                    log = obs_runlog.active_runlog()
                    if log is not None:
                        log.record_exception(self, exc, trace=trial.network.trace)
                    raise
            with spans.span("trial/finalize"):
                _TRIAL_OUTCOMES.inc(
                    country=self.country if self.country is not None else "none",
                    protocol=self.protocol,
                    outcome=result.outcome,
                    succeeded=result.succeeded,
                )
                if not keep_trace:
                    result.trace = None
        return result
