"""Per-trial seed derivation shared by every execution path.

Historically each caller spaced trial seeds with ad-hoc arithmetic like
``seed + index * 7919``, which collides across adjacent base seeds
(``seed=7919, index=0`` and ``seed=0, index=1`` run the *same* trial and
silently correlate "independent" measurements). All seed fan-out now goes
through :func:`trial_seed`, a splitmix64-style bijective mixer: the same
``(base_seed, index)`` pair always yields the same trial seed, distinct
pairs essentially never share one, and both the serial and the parallel
executor paths use this single definition, so they are bit-identical.
"""

from __future__ import annotations

__all__ = ["splitmix64", "trial_seed", "net_stream_seed", "fleet_stream_seed"]

_MASK64 = (1 << 64) - 1
#: splitmix64's additive constant (the 64-bit golden ratio).
_GOLDEN = 0x9E3779B97F4A7C15

#: Domain-separation salt for the network-impairment stream. Any value
#: works as long as it is fixed; this one spells "net noise" loosely.
_NET_SALT = 0x4E45_545F_4E4F_4953

#: Domain-separation salt for fleet-mode world streams ("FLEET" in hex).
_FLEET_SALT = 0x464C_4545_545F_5357


def splitmix64(value: int) -> int:
    """One splitmix64 finalization round (Steele et al., "Fast Splittable
    Pseudorandom Number Generators"). A bijection on 64-bit integers with
    full avalanche: flipping any input bit flips ~half the output bits.
    """
    value = (value + _GOLDEN) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def trial_seed(base_seed: int, index: int) -> int:
    """Derive the seed for trial ``index`` of a batch with ``base_seed``.

    Two mixing rounds keep the (base, index) plane collision-free in
    practice: the index is avalanched first so that nearby bases combined
    with nearby indices cannot land on the same lattice point the way the
    old ``base + index * prime`` spacing did. The result is non-negative
    and fits in 63 bits (safe for ``random.Random`` everywhere).
    """
    mixed = splitmix64((base_seed & _MASK64) ^ splitmix64(index & _MASK64))
    return mixed >> 1


def net_stream_seed(seed: int) -> int:
    """Split the network-impairment RNG stream off a trial seed.

    Netsim impairment draws must come from their own ``random.Random``:
    sharing a generator with censor models, endpoint ISNs, or GA
    mutation would let turning impairment on or off shift *every other*
    random decision in a trial. Domain-separating the trial seed with a
    fixed salt (then avalanching) yields an independent, reproducible
    stream — and consuming it leaves all other streams untouched, so
    trials with impairment disabled are bit-identical to trials that
    never heard of impairment.
    """
    return splitmix64((seed & _MASK64) ^ _NET_SALT) >> 1


def fleet_stream_seed(seed: int, stream: int = 0) -> int:
    """Split a fleet-world stream (arrivals, mix assignment, ...) off a seed.

    Fleet mode derives per-flow *trial* seeds with :func:`trial_seed`
    (flow ``i`` of a fleet with ``seed`` replays trial ``i`` of a batch
    with the same seed — the anchor of the single-flow-equivalence
    guarantee). World-level draws — arrival spacing, client-mix
    assignment — must therefore come from streams that cannot collide
    with any flow's trial seed; a fixed fleet salt plus a per-stream
    index keeps them domain-separated and reproducible.
    """
    mixed = splitmix64((seed & _MASK64) ^ _FLEET_SALT)
    return splitmix64(mixed ^ splitmix64(stream & _MASK64)) >> 1
