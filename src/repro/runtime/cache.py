"""Content-addressed trial-result cache.

Results are keyed on ``TrialSpec.spec_hash()`` — a SHA-256 of the spec's
canonical JSON — with two layers:

- an in-memory LRU (per-process, always on), and
- an optional on-disk JSON store (one file per result under a cache
  directory, default ``.repro_cache/``) that persists across runs so a
  repeated matrix/sweep/GA evaluation re-executes nothing.

Disk entries embed the full canonical key next to the result. A lookup
only counts as a hit when the stored key both hashes back to the file's
address *and* equals the requesting spec's key — a poisoned or corrupt
entry is therefore detected and ignored rather than silently served.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..obs.metrics import Counter
from .spec import TrialSpec

__all__ = [
    "CacheStats",
    "ResultCache",
    "DEFAULT_CACHE_DIR",
    "canonical_sha",
    "resolve_cache",
]

#: Default on-disk store location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Cache traffic. Non-deterministic: the disk store persists across
#: runs, so hit/miss splits depend on what earlier runs left behind.
_CACHE_LOOKUPS = Counter(
    "repro_cache_lookups_total",
    "Result-cache lookups, by outcome",
    ("result",),  # hit | miss | poisoned
    deterministic=False,
)
_CACHE_STORES = Counter(
    "repro_cache_stores_total",
    "Results written to the cache",
    deterministic=False,
)


@dataclass
class CacheStats:
    """Counters for one cache instance (cumulative)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    poisoned: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "poisoned": self.poisoned,
        }


def canonical_sha(payload: Any) -> str:
    """SHA-256 hex digest of a value's canonical (sorted-key) JSON form.

    This is the one content-address function shared by the result cache
    and the campaign ledger: any JSON-able value has exactly one digest,
    independent of dict insertion order.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# Internal alias kept for the entry-integrity checks below.
_payload_sha = canonical_sha


def result_payload(result) -> Dict[str, Any]:
    """The JSON-able portion of a TrialResult (the trace never travels)."""
    return {
        "outcome": result.outcome,
        "succeeded": bool(result.succeeded),
        "censored": bool(result.censored),
        "detail": result.detail,
    }


def payload_result(payload: Dict[str, Any]):
    """Rebuild a TrialResult (trace-free) from a stored payload."""
    from ..eval.runner import TrialResult

    return TrialResult(
        outcome=payload["outcome"],
        succeeded=bool(payload["succeeded"]),
        censored=bool(payload["censored"]),
        detail=payload.get("detail", ""),
        trace=None,
    )


class ResultCache:
    """Two-layer (memory LRU + optional disk) trial-result cache."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        max_memory_items: int = 65536,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_items = max_memory_items
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # ------------------------------------------------------------------

    def _disk_path(self, digest: str) -> Path:
        # Two-level fan-out keeps directories small at scale.
        return self.directory / digest[:2] / f"{digest}.json"

    def _remember(self, digest: str, payload: Dict[str, Any]) -> None:
        self._memory[digest] = payload
        self._memory.move_to_end(digest)
        while len(self._memory) > self.max_memory_items:
            self._memory.popitem(last=False)

    def _load_disk(self, digest: str, key: str) -> Optional[Dict[str, Any]]:
        if self.directory is None:
            return None
        path = self._disk_path(digest)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        stored_key = entry.get("spec")
        stored_hash = hashlib.sha256(
            str(stored_key).encode("utf-8")
        ).hexdigest()
        if stored_key != key or stored_hash != digest:
            # Poisoned/corrupt entry: the content does not address itself.
            self._poisoned()
            return None
        payload = entry.get("result")
        if not isinstance(payload, dict) or "outcome" not in payload:
            self._poisoned()
            return None
        if entry.get("result_sha") != _payload_sha(payload):
            # The result bytes were edited after the entry was written.
            self._poisoned()
            return None
        return payload

    def _poisoned(self) -> None:
        self.stats.poisoned += 1
        _CACHE_LOOKUPS.inc(result="poisoned")

    # ------------------------------------------------------------------

    def lookup(self, spec: TrialSpec):
        """Return the cached TrialResult for ``spec``, or ``None``."""
        digest = spec.spec_hash()
        payload = self._memory.get(digest)
        if payload is not None:
            self._memory.move_to_end(digest)
            self.stats.hits += 1
            _CACHE_LOOKUPS.inc(result="hit")
            return payload_result(payload)
        payload = self._load_disk(digest, spec.canonical_key())
        if payload is not None:
            self._remember(digest, payload)
            self.stats.hits += 1
            _CACHE_LOOKUPS.inc(result="hit")
            return payload_result(payload)
        self.stats.misses += 1
        _CACHE_LOOKUPS.inc(result="miss")
        return None

    def store(self, spec: TrialSpec, result) -> None:
        """Record ``result`` for ``spec`` in memory (and on disk if set)."""
        digest = spec.spec_hash()
        payload = result_payload(result)
        self._remember(digest, payload)
        self.stats.stores += 1
        _CACHE_STORES.inc()
        if self.directory is None:
            return
        path = self._disk_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "spec": spec.canonical_key(),
            "result": payload,
            "result_sha": _payload_sha(payload),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True))
        os.replace(tmp, path)  # atomic publish: concurrent readers never
        # observe a half-written entry


def resolve_cache(cache) -> Optional[ResultCache]:
    """Normalize a user-facing ``cache=`` argument.

    ``None``/``False`` → no cache; ``True`` → disk store under the
    default directory; a string/path → disk store there; a
    :class:`ResultCache` instance → itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache(DEFAULT_CACHE_DIR)
    if isinstance(cache, ResultCache):
        return cache
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    raise TypeError(f"cache must be None/bool/path/ResultCache, got {cache!r}")
