"""Batch trial execution: serial, parallel, and cached.

:class:`TrialExecutor` takes batches of :class:`~repro.runtime.spec.TrialSpec`
and returns their :class:`~repro.eval.runner.TrialResult` outcomes in
submission order. Three properties are load-bearing:

- **Determinism** — every spec carries its own seed, so results do not
  depend on worker count, scheduling, or completion order. The
  ``workers=1`` path runs in-process with no multiprocessing machinery
  at all (and is also the fallback on platforms without ``fork`` when
  ``spawn`` is unavailable).
- **Parallelism** — ``workers>1`` fans specs out over a process pool.
  Trials are embarrassingly parallel (independent seeds, discrete-event
  simulation), so speedup tracks available cores.
- **Caching** — an optional :class:`~repro.runtime.cache.ResultCache` is
  consulted per spec before execution; hits skip the trial entirely and
  misses are stored back, so repeated matrix/sweep/GA runs converge to
  zero executions.

Observability: every batch produces a :class:`RunStats` with requested /
executed / cache-hit counters, wall time, per-worker trial counts, and a
busy-time utilization estimate; executors also accumulate totals. With
``collect_metrics=True`` the executor additionally owns a
:class:`~repro.obs.MetricsRegistry`: workers return their per-trial
metric snapshots alongside results and the executor folds them — the
merge is associative, so the run-level view is identical whatever the
worker count — and an attached :class:`~repro.obs.RunLog` receives one
structured record per trial in submission order.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..obs.metrics import Counter, Gauge
from ..obs.runlog import RunLog
from .cache import ResultCache, payload_result, result_payload, resolve_cache
from .spec import TrialSpec

__all__ = ["RunStats", "TrialExecutor"]

#: Batch-level trial accounting. Deterministic: a batch of N specs always
#: requests N and splits them the same way between cache and execution.
_EXEC_TRIALS = Counter(
    "repro_executor_trials_total",
    "Specs handled by the executor, by disposition",
    ("state",),  # requested | executed | cached
)
_EXEC_BATCHES = Counter(
    "repro_executor_batches_total",
    "Batches submitted to the executor",
)
_EXEC_WALL = Counter(
    "repro_executor_wall_seconds_total",
    "Wall-clock seconds spent inside run_batch",
    deterministic=False,
)
_EXEC_BUSY = Counter(
    "repro_executor_busy_seconds_total",
    "Summed per-trial execution seconds across workers",
    deterministic=False,
)
_EXEC_UTILIZATION = Gauge(
    "repro_executor_utilization_ratio",
    "Peak fraction of worker wall-time capacity spent running trials",
    agg="max",
    deterministic=False,
)
_WORKER_TRIALS = Counter(
    "repro_worker_trials_total",
    "Trials executed per worker (ordinal is stable; pid is informational)",
    ("worker", "pid"),
    deterministic=False,  # pids differ run to run
)
#: How cold trials were dispatched: as part of a multi-trial shard
#: (identical spec minus seed, amortized decode/dispatch) or alone.
#: Worker-count independent (grouping happens before pool chunking; the
#: telemetry parity test pins this) but NOT batch-split independent — a
#: campaign sharded into smaller batches can turn one batched group into
#: several singles — so it is excluded from determinism diffs.
_EXEC_DISPATCH = Counter(
    "repro_executor_dispatch_total",
    "Trials dispatched to execution, by shard mode",
    ("mode",),  # batched | single
    deterministic=False,
)


@dataclass
class RunStats:
    """Counters for one batch (or, merged, for an executor's lifetime).

    Attributes:
        requested: Specs submitted to the batch.
        executed: Trials actually run (cache misses).
        cache_hits: Trials served from the result cache.
        wall_time: Batch wall-clock seconds.
        busy_time: Summed per-trial execution seconds across workers.
        workers: Worker processes used (1 = in-process serial).
        per_worker: Trials executed per worker, keyed by stable worker
            ordinal (``"w0"``, ``"w1"``, ...). Ordinals are assigned by
            the executor in first-seen order and survive pool restarts —
            raw pids can be recycled by the OS and collide across
            restarts, silently merging two different workers' counts, so
            the pid is demoted to an informational label on the
            ``repro_worker_trials_total`` metric.
        batched: Cold trials dispatched as part of a multi-trial shard
            (identical spec minus seed). Grouping happens before pool
            chunking, so the split is worker-count independent.
        single: Cold trials whose spec shape was unique in the batch.
    """

    requested: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_time: float = 0.0
    busy_time: float = 0.0
    workers: int = 1
    per_worker: Dict[str, int] = field(default_factory=dict)
    batched: int = 0
    single: int = 0

    @property
    def cold(self) -> int:
        """Trials actually executed (alias of :attr:`executed`)."""
        return self.executed

    @property
    def warm(self) -> int:
        """Trials served from the cache (alias of :attr:`cache_hits`)."""
        return self.cache_hits

    @property
    def utilization(self) -> float:
        """Fraction of worker wall-time capacity spent running trials."""
        if self.wall_time <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.wall_time * self.workers))

    def merge(self, other: "RunStats") -> None:
        """Fold another batch's counters into this one.

        The fold is associative and commutative (sums, dict-sums, and a
        ``max``), matching the metric-snapshot algebra: merging batch
        stats A+(B+C) equals (A+B)+C equals any other grouping, so
        totals are independent of how a run was sharded.
        """
        self.requested += other.requested
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.wall_time += other.wall_time
        self.busy_time += other.busy_time
        self.workers = max(self.workers, other.workers)
        self.batched += other.batched
        self.single += other.single
        for worker, count in other.per_worker.items():
            self.per_worker[worker] = self.per_worker.get(worker, 0) + count

    @classmethod
    def merged(cls, parts: Sequence["RunStats"]) -> "RunStats":
        """Pure fold of many stats into a fresh one (order-independent)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (telemetry ``run.json``)."""
        return {
            "requested": self.requested,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cold": self.cold,
            "warm": self.warm,
            "batched": self.batched,
            "single": self.single,
            "wall_time": self.wall_time,
            "busy_time": self.busy_time,
            "workers": self.workers,
            "utilization": self.utilization,
            "per_worker": dict(self.per_worker),
        }

    def format(self) -> str:
        """One-line human-readable rendering (cold = executed, warm =
        cache hits; batched/single split the cold dispatches)."""
        return (
            f"trials={self.requested} executed={self.executed} "
            f"cache_hits={self.cache_hits} cold={self.cold} warm={self.warm} "
            f"batched={self.batched} single={self.single} "
            f"workers={self.workers} "
            f"wall={self.wall_time:.2f}s utilization={self.utilization:.0%}"
        )


def _execute_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one shard (same spec shape, many seeds).

    Module-level (not a closure) so it pickles under both ``fork`` and
    ``spawn`` start methods. When the executor asked for metric
    collection (``_collect``), the shard runs inside an isolated
    registry and its snapshot travels back with the results — the parent
    merges snapshots associatively, so totals are identical however
    trials were sharded across workers.

    A shard is a run of specs identical except for their seeds — exactly
    what ``success_rate`` and the sweep drivers produce. Executing them
    together amortizes per-dispatch costs: one IPC payload and one metric
    snapshot per shard rather than per trial, and the strategy parse /
    packet arena warm-up from the first trial is reused by the rest of
    the shard within the worker process.
    """
    base = payload["base"]
    collect = payload.get("_collect", False)
    outs: List[Dict[str, Any]] = []

    def run_all() -> None:
        for seed in payload["seeds"]:
            spec = TrialSpec(
                country=base["country"],
                protocol=base["protocol"],
                server_strategy=base["server_strategy"],
                seed=seed,
                client_strategy=base["client_strategy"],
                options=base["options"],
                impairment=base.get("impairment"),
            )
            start = time.perf_counter()
            result = spec.run()
            duration = time.perf_counter() - start
            out = result_payload(result)
            out["_duration"] = duration
            outs.append(out)

    if collect:
        with obs_metrics.collecting() as registry:
            run_all()
        snapshot = registry.snapshot()
    else:
        run_all()
        snapshot = None
    return {"results": outs, "_pid": os.getpid(), "_metrics": snapshot}


def _preferred_start_method() -> Optional[str]:
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver", "spawn"):
        if method in methods:
            return method
    return None


class TrialExecutor:
    """Runs batches of trial specs, optionally in parallel and cached.

    Args:
        workers: Worker processes; ``1`` (the default) executes in-process
            and is bit-identical to the historical serial loop.
        cache: ``None`` (off), ``True`` (disk store under
            ``.repro_cache/``), a directory path, or a
            :class:`ResultCache` instance.
        start_method: Force a multiprocessing start method (tests);
            default picks ``fork`` where available.
        collect_metrics: Collect per-trial metric snapshots (from
            workers or in-process) into :attr:`metrics`, an executor-
            owned registry. Off by default so unmeasured runs pay
            nothing for snapshot pickling.
        runlog: Optional :class:`~repro.obs.RunLog`; when set, every
            trial (including cache hits) is recorded in submission
            order.

    The worker pool is created lazily on the first parallel batch and
    **reused** across batches, so callers that issue many small batches
    through one executor (``generate_table2`` makes one ``success_rate``
    call per cell) pay pool start-up once, not per call. Call
    :meth:`close` — or use the executor as a context manager — to tear
    the pool down deterministically; otherwise it is reclaimed with the
    executor.
    """

    def __init__(
        self,
        workers: int = 1,
        cache=None,
        start_method: Optional[str] = None,
        collect_metrics: bool = False,
        runlog: Optional[RunLog] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache: Optional[ResultCache] = resolve_cache(cache)
        self._start_method = start_method
        self._pool = None
        self.last_stats = RunStats()
        self.total_stats = RunStats()
        self.metrics: Optional[obs_metrics.MetricsRegistry] = (
            obs_metrics.MetricsRegistry() if collect_metrics else None
        )
        self.runlog = runlog
        # pid -> stable worker ordinal, assigned in first-seen order and
        # never reused (pool restarts get fresh ordinals, so a recycled
        # pid cannot silently merge with a dead worker's counts).
        self._worker_ordinals: Dict[str, str] = {}
        self._trial_index = 0  # submission-order counter for the runlog

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def run_one(self, spec: TrialSpec, keep_trace: bool = False):
        """Run a single spec in-process (cached unless a trace is kept).

        Trace-bearing results never touch the cache: the cache stores
        only the JSON-able outcome, and serving a trace-free hit to a
        caller that asked for the trace would be wrong.
        """
        if keep_trace:
            return spec.run(keep_trace=True)
        results = self.run_batch([spec])
        return results[0]

    def run_batch(self, specs: Sequence[TrialSpec]) -> List:
        """Execute ``specs`` and return results in submission order."""
        if self.metrics is not None:
            # Route every increment this batch produces — parent-side
            # executor/cache counters and in-process trial metrics alike
            # — into the executor's own registry; worker snapshots are
            # merged into the same place below.
            with obs_metrics.collecting(self.metrics):
                return self._run_batch(specs)
        return self._run_batch(specs)

    def _run_batch(self, specs: Sequence[TrialSpec]) -> List:
        start = time.perf_counter()
        stats = RunStats(requested=len(specs), workers=self.workers)
        results: List[Any] = [None] * len(specs)
        collect = self.metrics is not None

        with obs_spans.span("executor/batch"):
            cached_positions = set()
            pending: List[int] = []
            for position, spec in enumerate(specs):
                cached = self.cache.lookup(spec) if self.cache is not None else None
                if cached is not None:
                    results[position] = cached
                    cached_positions.add(position)
                    stats.cache_hits += 1
                else:
                    pending.append(position)

            if pending:
                # Shard the cold trials: specs identical except for
                # their seed run as one dispatch unit. The batched /
                # single split is decided here — before any pool
                # chunking — so it is worker-count independent.
                shards = self._shard_pending(specs, pending)
                for positions in shards:
                    count = len(positions)
                    if count > 1:
                        stats.batched += count
                        _EXEC_DISPATCH.inc(count, mode="batched")
                    else:
                        stats.single += count
                        _EXEC_DISPATCH.inc(count, mode="single")
                if self.workers == 1 or len(pending) == 1:
                    chunks = shards
                    stats.workers = 1
                else:
                    # Re-chunk large shards for pool load balance; this
                    # only changes which worker runs what, never results
                    # or the dispatch accounting above.
                    chunk_size = max(1, len(pending) // (self.workers * 4))
                    chunks = []
                    for positions in shards:
                        for i in range(0, len(positions), chunk_size):
                            chunks.append(positions[i : i + chunk_size])
                payloads = []
                for positions in chunks:
                    base = specs[positions[0]].as_dict()
                    del base["seed"]
                    payload = {
                        "base": base,
                        "seeds": [specs[p].seed for p in positions],
                    }
                    if collect:
                        payload["_collect"] = True
                    payloads.append(payload)
                if self.workers == 1 or len(pending) == 1:
                    shard_outs = [_execute_shard(payload) for payload in payloads]
                else:
                    shard_outs = self._run_pool(payloads)
                for positions, shard_out in zip(chunks, shard_outs):
                    pid = str(shard_out.get("_pid", os.getpid()))
                    worker = self._worker_ordinal(pid)
                    count = len(positions)
                    stats.per_worker[worker] = stats.per_worker.get(worker, 0) + count
                    _WORKER_TRIALS.inc(count, worker=worker, pid=pid)
                    snapshot = shard_out.get("_metrics")
                    if snapshot is not None:
                        obs_metrics.active_registry().merge_snapshot(snapshot)
                    for position, out in zip(positions, shard_out["results"]):
                        stats.executed += 1
                        stats.busy_time += out.pop("_duration", 0.0)
                        result = payload_result(out)
                        results[position] = result
                        if self.cache is not None:
                            self.cache.store(specs[position], result)

        stats.wall_time = time.perf_counter() - start
        self.last_stats = stats
        self.total_stats.merge(stats)
        _EXEC_BATCHES.inc()
        _EXEC_TRIALS.inc(stats.requested, state="requested")
        _EXEC_TRIALS.inc(stats.executed, state="executed")
        _EXEC_TRIALS.inc(stats.cache_hits, state="cached")
        _EXEC_WALL.inc(stats.wall_time)
        _EXEC_BUSY.inc(stats.busy_time)
        _EXEC_UTILIZATION.set(stats.utilization)
        if self.runlog is not None:
            for position, spec in enumerate(specs):
                self.runlog.record_trial(
                    self._trial_index,
                    spec,
                    results[position],
                    cached=position in cached_positions,
                )
                self._trial_index += 1
        return results

    @staticmethod
    def _shard_pending(
        specs: Sequence[TrialSpec], pending: Sequence[int]
    ) -> List[List[int]]:
        """Group pending positions into shards (same spec minus seed).

        Groups preserve first-seen order, and positions within a group
        stay in submission order, so the seed sequence each shard runs
        is reproducible.
        """
        groups: Dict[tuple, List[int]] = {}
        for position in pending:
            spec = specs[position]
            shape = (
                spec.country,
                spec.protocol,
                spec.server_strategy,
                spec.client_strategy,
                json.dumps(spec.options, sort_keys=True, separators=(",", ":")),
                json.dumps(spec.impairment, sort_keys=True, separators=(",", ":"))
                if spec.impairment is not None
                else None,
            )
            groups.setdefault(shape, []).append(position)
        return list(groups.values())

    def _worker_ordinal(self, pid: str) -> str:
        ordinal = self._worker_ordinals.get(pid)
        if ordinal is None:
            ordinal = f"w{len(self._worker_ordinals)}"
            self._worker_ordinals[pid] = ordinal
        return ordinal

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The executor's merged run-level metric snapshot.

        Empty unless the executor was built with ``collect_metrics=True``.
        """
        return self.metrics.snapshot() if self.metrics is not None else {}

    def format_stats(self) -> str:
        """Cumulative RunStats plus cache health, for ``--stats``."""
        line = self.total_stats.format()
        if self.cache is not None:
            cs = self.cache.stats
            line += (
                f"\ncache: hits={cs.hits} misses={cs.misses} "
                f"stores={cs.stores} poisoned={cs.poisoned}"
            )
        return line

    def _get_pool(self):
        if self._pool is None:
            method = self._start_method or _preferred_start_method()
            if method is None:  # no multiprocessing at all on this platform
                return None
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _run_pool(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        pool = self._get_pool()
        if pool is None:
            return [_execute_shard(payload) for payload in payloads]
        # Payloads are already chunked for balance by the caller.
        return pool.map(_execute_shard, payloads, chunksize=1)
