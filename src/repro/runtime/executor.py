"""Batch trial execution: serial, parallel, and cached.

:class:`TrialExecutor` takes batches of :class:`~repro.runtime.spec.TrialSpec`
and returns their :class:`~repro.eval.runner.TrialResult` outcomes in
submission order. Three properties are load-bearing:

- **Determinism** — every spec carries its own seed, so results do not
  depend on worker count, scheduling, or completion order. The
  ``workers=1`` path runs in-process with no multiprocessing machinery
  at all (and is also the fallback on platforms without ``fork`` when
  ``spawn`` is unavailable).
- **Parallelism** — ``workers>1`` fans specs out over a process pool.
  Trials are embarrassingly parallel (independent seeds, discrete-event
  simulation), so speedup tracks available cores.
- **Caching** — an optional :class:`~repro.runtime.cache.ResultCache` is
  consulted per spec before execution; hits skip the trial entirely and
  misses are stored back, so repeated matrix/sweep/GA runs converge to
  zero executions.

Observability: every batch produces a :class:`RunStats` with requested /
executed / cache-hit counters, wall time, per-worker trial counts, and a
busy-time utilization estimate; executors also accumulate totals. With
``collect_metrics=True`` the executor additionally owns a
:class:`~repro.obs.MetricsRegistry`: workers return their per-trial
metric snapshots alongside results and the executor folds them — the
merge is associative, so the run-level view is identical whatever the
worker count — and an attached :class:`~repro.obs.RunLog` receives one
structured record per trial in submission order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..obs.metrics import Counter, Gauge
from ..obs.runlog import RunLog
from .cache import ResultCache, payload_result, result_payload, resolve_cache
from .spec import TrialSpec

__all__ = ["RunStats", "TrialExecutor"]

#: Batch-level trial accounting. Deterministic: a batch of N specs always
#: requests N and splits them the same way between cache and execution.
_EXEC_TRIALS = Counter(
    "repro_executor_trials_total",
    "Specs handled by the executor, by disposition",
    ("state",),  # requested | executed | cached
)
_EXEC_BATCHES = Counter(
    "repro_executor_batches_total",
    "Batches submitted to the executor",
)
_EXEC_WALL = Counter(
    "repro_executor_wall_seconds_total",
    "Wall-clock seconds spent inside run_batch",
    deterministic=False,
)
_EXEC_BUSY = Counter(
    "repro_executor_busy_seconds_total",
    "Summed per-trial execution seconds across workers",
    deterministic=False,
)
_EXEC_UTILIZATION = Gauge(
    "repro_executor_utilization_ratio",
    "Peak fraction of worker wall-time capacity spent running trials",
    agg="max",
    deterministic=False,
)
_WORKER_TRIALS = Counter(
    "repro_worker_trials_total",
    "Trials executed per worker (ordinal is stable; pid is informational)",
    ("worker", "pid"),
    deterministic=False,  # pids differ run to run
)


@dataclass
class RunStats:
    """Counters for one batch (or, merged, for an executor's lifetime).

    Attributes:
        requested: Specs submitted to the batch.
        executed: Trials actually run (cache misses).
        cache_hits: Trials served from the result cache.
        wall_time: Batch wall-clock seconds.
        busy_time: Summed per-trial execution seconds across workers.
        workers: Worker processes used (1 = in-process serial).
        per_worker: Trials executed per worker, keyed by stable worker
            ordinal (``"w0"``, ``"w1"``, ...). Ordinals are assigned by
            the executor in first-seen order and survive pool restarts —
            raw pids can be recycled by the OS and collide across
            restarts, silently merging two different workers' counts, so
            the pid is demoted to an informational label on the
            ``repro_worker_trials_total`` metric.
    """

    requested: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_time: float = 0.0
    busy_time: float = 0.0
    workers: int = 1
    per_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of worker wall-time capacity spent running trials."""
        if self.wall_time <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.wall_time * self.workers))

    def merge(self, other: "RunStats") -> None:
        """Fold another batch's counters into this one.

        The fold is associative and commutative (sums, dict-sums, and a
        ``max``), matching the metric-snapshot algebra: merging batch
        stats A+(B+C) equals (A+B)+C equals any other grouping, so
        totals are independent of how a run was sharded.
        """
        self.requested += other.requested
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.wall_time += other.wall_time
        self.busy_time += other.busy_time
        self.workers = max(self.workers, other.workers)
        for worker, count in other.per_worker.items():
            self.per_worker[worker] = self.per_worker.get(worker, 0) + count

    @classmethod
    def merged(cls, parts: Sequence["RunStats"]) -> "RunStats":
        """Pure fold of many stats into a fresh one (order-independent)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form (telemetry ``run.json``)."""
        return {
            "requested": self.requested,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "wall_time": self.wall_time,
            "busy_time": self.busy_time,
            "workers": self.workers,
            "utilization": self.utilization,
            "per_worker": dict(self.per_worker),
        }

    def format(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"trials={self.requested} executed={self.executed} "
            f"cache_hits={self.cache_hits} workers={self.workers} "
            f"wall={self.wall_time:.2f}s utilization={self.utilization:.0%}"
        )


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one spec payload, return a result payload.

    Module-level (not a closure) so it pickles under both ``fork`` and
    ``spawn`` start methods. When the executor asked for metric
    collection (``_collect``), the trial runs inside an isolated
    registry and its snapshot travels back with the result — the parent
    merges snapshots associatively, so totals are identical however
    trials were sharded across workers.
    """
    spec = TrialSpec(
        country=payload["country"],
        protocol=payload["protocol"],
        server_strategy=payload["server_strategy"],
        seed=payload["seed"],
        client_strategy=payload["client_strategy"],
        options=payload["options"],
        impairment=payload.get("impairment"),
    )
    collect = payload.get("_collect", False)
    start = time.perf_counter()
    if collect:
        with obs_metrics.collecting() as registry:
            result = spec.run()
        snapshot = registry.snapshot()
    else:
        result = spec.run()
        snapshot = None
    duration = time.perf_counter() - start
    out = result_payload(result)
    out["_duration"] = duration
    out["_pid"] = os.getpid()
    if snapshot is not None:
        out["_metrics"] = snapshot
    return out


def _preferred_start_method() -> Optional[str]:
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver", "spawn"):
        if method in methods:
            return method
    return None


class TrialExecutor:
    """Runs batches of trial specs, optionally in parallel and cached.

    Args:
        workers: Worker processes; ``1`` (the default) executes in-process
            and is bit-identical to the historical serial loop.
        cache: ``None`` (off), ``True`` (disk store under
            ``.repro_cache/``), a directory path, or a
            :class:`ResultCache` instance.
        start_method: Force a multiprocessing start method (tests);
            default picks ``fork`` where available.
        collect_metrics: Collect per-trial metric snapshots (from
            workers or in-process) into :attr:`metrics`, an executor-
            owned registry. Off by default so unmeasured runs pay
            nothing for snapshot pickling.
        runlog: Optional :class:`~repro.obs.RunLog`; when set, every
            trial (including cache hits) is recorded in submission
            order.

    The worker pool is created lazily on the first parallel batch and
    **reused** across batches, so callers that issue many small batches
    through one executor (``generate_table2`` makes one ``success_rate``
    call per cell) pay pool start-up once, not per call. Call
    :meth:`close` — or use the executor as a context manager — to tear
    the pool down deterministically; otherwise it is reclaimed with the
    executor.
    """

    def __init__(
        self,
        workers: int = 1,
        cache=None,
        start_method: Optional[str] = None,
        collect_metrics: bool = False,
        runlog: Optional[RunLog] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache: Optional[ResultCache] = resolve_cache(cache)
        self._start_method = start_method
        self._pool = None
        self.last_stats = RunStats()
        self.total_stats = RunStats()
        self.metrics: Optional[obs_metrics.MetricsRegistry] = (
            obs_metrics.MetricsRegistry() if collect_metrics else None
        )
        self.runlog = runlog
        # pid -> stable worker ordinal, assigned in first-seen order and
        # never reused (pool restarts get fresh ordinals, so a recycled
        # pid cannot silently merge with a dead worker's counts).
        self._worker_ordinals: Dict[str, str] = {}
        self._trial_index = 0  # submission-order counter for the runlog

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def run_one(self, spec: TrialSpec, keep_trace: bool = False):
        """Run a single spec in-process (cached unless a trace is kept).

        Trace-bearing results never touch the cache: the cache stores
        only the JSON-able outcome, and serving a trace-free hit to a
        caller that asked for the trace would be wrong.
        """
        if keep_trace:
            return spec.run(keep_trace=True)
        results = self.run_batch([spec])
        return results[0]

    def run_batch(self, specs: Sequence[TrialSpec]) -> List:
        """Execute ``specs`` and return results in submission order."""
        if self.metrics is not None:
            # Route every increment this batch produces — parent-side
            # executor/cache counters and in-process trial metrics alike
            # — into the executor's own registry; worker snapshots are
            # merged into the same place below.
            with obs_metrics.collecting(self.metrics):
                return self._run_batch(specs)
        return self._run_batch(specs)

    def _run_batch(self, specs: Sequence[TrialSpec]) -> List:
        start = time.perf_counter()
        stats = RunStats(requested=len(specs), workers=self.workers)
        results: List[Any] = [None] * len(specs)
        collect = self.metrics is not None

        with obs_spans.span("executor/batch"):
            cached_positions = set()
            pending: List[int] = []
            for position, spec in enumerate(specs):
                cached = self.cache.lookup(spec) if self.cache is not None else None
                if cached is not None:
                    results[position] = cached
                    cached_positions.add(position)
                    stats.cache_hits += 1
                else:
                    pending.append(position)

            if pending:
                payloads = [specs[position].as_dict() for position in pending]
                if collect:
                    for payload in payloads:
                        payload["_collect"] = True
                if self.workers == 1 or len(pending) == 1:
                    outs = [_execute_payload(payload) for payload in payloads]
                    stats.workers = 1
                else:
                    outs = self._run_pool(payloads)
                for position, out in zip(pending, outs):
                    stats.executed += 1
                    duration = out.pop("_duration", 0.0)
                    stats.busy_time += duration
                    pid = str(out.pop("_pid", os.getpid()))
                    worker = self._worker_ordinal(pid)
                    stats.per_worker[worker] = stats.per_worker.get(worker, 0) + 1
                    _WORKER_TRIALS.inc(worker=worker, pid=pid)
                    snapshot = out.pop("_metrics", None)
                    if snapshot is not None:
                        obs_metrics.active_registry().merge_snapshot(snapshot)
                    result = payload_result(out)
                    results[position] = result
                    if self.cache is not None:
                        self.cache.store(specs[position], result)

        stats.wall_time = time.perf_counter() - start
        self.last_stats = stats
        self.total_stats.merge(stats)
        _EXEC_BATCHES.inc()
        _EXEC_TRIALS.inc(stats.requested, state="requested")
        _EXEC_TRIALS.inc(stats.executed, state="executed")
        _EXEC_TRIALS.inc(stats.cache_hits, state="cached")
        _EXEC_WALL.inc(stats.wall_time)
        _EXEC_BUSY.inc(stats.busy_time)
        _EXEC_UTILIZATION.set(stats.utilization)
        if self.runlog is not None:
            for position, spec in enumerate(specs):
                self.runlog.record_trial(
                    self._trial_index,
                    spec,
                    results[position],
                    cached=position in cached_positions,
                )
                self._trial_index += 1
        return results

    def _worker_ordinal(self, pid: str) -> str:
        ordinal = self._worker_ordinals.get(pid)
        if ordinal is None:
            ordinal = f"w{len(self._worker_ordinals)}"
            self._worker_ordinals[pid] = ordinal
        return ordinal

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The executor's merged run-level metric snapshot.

        Empty unless the executor was built with ``collect_metrics=True``.
        """
        return self.metrics.snapshot() if self.metrics is not None else {}

    def format_stats(self) -> str:
        """Cumulative RunStats plus cache health, for ``--stats``."""
        line = self.total_stats.format()
        if self.cache is not None:
            cs = self.cache.stats
            line += (
                f"\ncache: hits={cs.hits} misses={cs.misses} "
                f"stores={cs.stores} poisoned={cs.poisoned}"
            )
        return line

    def _get_pool(self):
        if self._pool is None:
            method = self._start_method or _preferred_start_method()
            if method is None:  # no multiprocessing at all on this platform
                return None
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _run_pool(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        pool = self._get_pool()
        if pool is None:
            return [_execute_payload(payload) for payload in payloads]
        chunksize = max(1, len(payloads) // (self.workers * 4))
        return pool.map(_execute_payload, payloads, chunksize=chunksize)
