"""Batch trial execution: serial, parallel, and cached.

:class:`TrialExecutor` takes batches of :class:`~repro.runtime.spec.TrialSpec`
and returns their :class:`~repro.eval.runner.TrialResult` outcomes in
submission order. Three properties are load-bearing:

- **Determinism** — every spec carries its own seed, so results do not
  depend on worker count, scheduling, or completion order. The
  ``workers=1`` path runs in-process with no multiprocessing machinery
  at all (and is also the fallback on platforms without ``fork`` when
  ``spawn`` is unavailable).
- **Parallelism** — ``workers>1`` fans specs out over a process pool.
  Trials are embarrassingly parallel (independent seeds, discrete-event
  simulation), so speedup tracks available cores.
- **Caching** — an optional :class:`~repro.runtime.cache.ResultCache` is
  consulted per spec before execution; hits skip the trial entirely and
  misses are stored back, so repeated matrix/sweep/GA runs converge to
  zero executions.

Observability: every batch produces a :class:`RunStats` with requested /
executed / cache-hit counters, wall time, per-worker trial counts, and a
busy-time utilization estimate; executors also accumulate totals.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .cache import ResultCache, payload_result, result_payload, resolve_cache
from .spec import TrialSpec

__all__ = ["RunStats", "TrialExecutor"]


@dataclass
class RunStats:
    """Counters for one batch (or, merged, for an executor's lifetime).

    Attributes:
        requested: Specs submitted to the batch.
        executed: Trials actually run (cache misses).
        cache_hits: Trials served from the result cache.
        wall_time: Batch wall-clock seconds.
        busy_time: Summed per-trial execution seconds across workers.
        workers: Worker processes used (1 = in-process serial).
        per_worker: Trials executed per worker, keyed by pid.
    """

    requested: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_time: float = 0.0
    busy_time: float = 0.0
    workers: int = 1
    per_worker: Dict[str, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Fraction of worker wall-time capacity spent running trials."""
        if self.wall_time <= 0.0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_time / (self.wall_time * self.workers))

    def merge(self, other: "RunStats") -> None:
        """Fold another batch's counters into this one."""
        self.requested += other.requested
        self.executed += other.executed
        self.cache_hits += other.cache_hits
        self.wall_time += other.wall_time
        self.busy_time += other.busy_time
        self.workers = max(self.workers, other.workers)
        for pid, count in other.per_worker.items():
            self.per_worker[pid] = self.per_worker.get(pid, 0) + count

    def format(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"trials={self.requested} executed={self.executed} "
            f"cache_hits={self.cache_hits} workers={self.workers} "
            f"wall={self.wall_time:.2f}s utilization={self.utilization:.0%}"
        )


def _execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one spec payload, return a result payload.

    Module-level (not a closure) so it pickles under both ``fork`` and
    ``spawn`` start methods.
    """
    spec = TrialSpec(
        country=payload["country"],
        protocol=payload["protocol"],
        server_strategy=payload["server_strategy"],
        seed=payload["seed"],
        client_strategy=payload["client_strategy"],
        options=payload["options"],
        impairment=payload.get("impairment"),
    )
    start = time.perf_counter()
    result = spec.run()
    duration = time.perf_counter() - start
    out = result_payload(result)
    out["_duration"] = duration
    out["_pid"] = os.getpid()
    return out


def _preferred_start_method() -> Optional[str]:
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver", "spawn"):
        if method in methods:
            return method
    return None


class TrialExecutor:
    """Runs batches of trial specs, optionally in parallel and cached.

    Args:
        workers: Worker processes; ``1`` (the default) executes in-process
            and is bit-identical to the historical serial loop.
        cache: ``None`` (off), ``True`` (disk store under
            ``.repro_cache/``), a directory path, or a
            :class:`ResultCache` instance.
        start_method: Force a multiprocessing start method (tests);
            default picks ``fork`` where available.

    The worker pool is created lazily on the first parallel batch and
    **reused** across batches, so callers that issue many small batches
    through one executor (``generate_table2`` makes one ``success_rate``
    call per cell) pay pool start-up once, not per call. Call
    :meth:`close` — or use the executor as a context manager — to tear
    the pool down deterministically; otherwise it is reclaimed with the
    executor.
    """

    def __init__(
        self,
        workers: int = 1,
        cache=None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache: Optional[ResultCache] = resolve_cache(cache)
        self._start_method = start_method
        self._pool = None
        self.last_stats = RunStats()
        self.total_stats = RunStats()

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TrialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------

    def run_one(self, spec: TrialSpec, keep_trace: bool = False):
        """Run a single spec in-process (cached unless a trace is kept).

        Trace-bearing results never touch the cache: the cache stores
        only the JSON-able outcome, and serving a trace-free hit to a
        caller that asked for the trace would be wrong.
        """
        if keep_trace:
            return spec.run(keep_trace=True)
        results = self.run_batch([spec])
        return results[0]

    def run_batch(self, specs: Sequence[TrialSpec]) -> List:
        """Execute ``specs`` and return results in submission order."""
        start = time.perf_counter()
        stats = RunStats(requested=len(specs), workers=self.workers)
        results: List[Any] = [None] * len(specs)

        pending: List[int] = []
        for position, spec in enumerate(specs):
            cached = self.cache.lookup(spec) if self.cache is not None else None
            if cached is not None:
                results[position] = cached
                stats.cache_hits += 1
            else:
                pending.append(position)

        if pending:
            payloads = [specs[position].as_dict() for position in pending]
            if self.workers == 1 or len(pending) == 1:
                outs = [_execute_payload(payload) for payload in payloads]
                stats.workers = 1
            else:
                outs = self._run_pool(payloads)
            for position, out in zip(pending, outs):
                stats.executed += 1
                stats.busy_time += out.pop("_duration", 0.0)
                pid = str(out.pop("_pid", os.getpid()))
                stats.per_worker[pid] = stats.per_worker.get(pid, 0) + 1
                result = payload_result(out)
                results[position] = result
                if self.cache is not None:
                    self.cache.store(specs[position], result)

        stats.wall_time = time.perf_counter() - start
        self.last_stats = stats
        self.total_stats.merge(stats)
        return results

    def _get_pool(self):
        if self._pool is None:
            method = self._start_method or _preferred_start_method()
            if method is None:  # no multiprocessing at all on this platform
                return None
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def _run_pool(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        pool = self._get_pool()
        if pool is None:
            return [_execute_payload(payload) for payload in payloads]
        chunksize = max(1, len(payloads) // (self.workers * 4))
        return pool.map(_execute_payload, payloads, chunksize=chunksize)
