#!/usr/bin/env python
"""Docs-as-tests: extract and execute every fenced example in the docs.

Documentation examples rot silently — a renamed flag or module breaks
``README.md`` long before anyone notices. This runner makes the docs
executable: it walks the given markdown files (or directories of
``*.md``), extracts every fenced ````bash`` / ````sh`` / ````python`` /
````py`` block, and runs each one, failing loudly on the first non-zero
exit. CI runs it over ``README.md`` and ``docs/`` on every push.

Mechanics:

- Each *file* gets one scratch working directory, so consecutive blocks
  in the same document can build on each other's artifacts; the repo's
  ``src/`` is prepended to ``PYTHONPATH`` so ``python -m repro`` and
  ``import repro`` work without installation.
- A block annotated with an HTML comment ``<!-- docs-ci: skip -->`` on
  the line directly above its opening fence is skipped (used for the
  two blocks that need network access or run the full test suite).
- With ``REPRO_DOC_MAX_TRIALS=N`` in the environment, numeric workload
  knobs inside the blocks (``--trials 200``, ``trials=200``,
  ``--generations``/``--population``/``population_size=``/...) are
  clamped to at most ``N`` before execution, so CI runs every example
  at smoke scale while the published text keeps realistic numbers.

Usage::

    REPRO_DOC_MAX_TRIALS=4 python tools/run_doc_examples.py README.md docs
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

SKIP_MARKER = "docs-ci: skip"
RUNNABLE_LANGS = {"bash": "bash", "sh": "bash", "python": "python", "py": "python"}

#: Workload knobs clamped under REPRO_DOC_MAX_TRIALS, as (pattern) pairs
#: whose group(1) is the knob text and group(2) the number.
_KNOB_PATTERNS = [
    re.compile(pattern)
    for pattern in (
        r"(--trials\s+)(\d+)",
        r"(--clients\s+)(\d+)",
        r"(\bclients\s*=\s*)(\d+)",
        r"(--generations\s+)(\d+)",
        r"(--population\s+)(\d+)",
        r"(\btrials\s*=\s*)(\d+)",
        r"(\bgenerations\s*=\s*)(\d+)",
        r"(\bpopulation_size\s*=\s*)(\d+)",
        r"(\bmax_tries\s*=\s*)(\d+)",
        r"(--epochs\s+)(\d+)",
        r"(\bepochs\s*=\s*)(\d+)",
        r"(--frontier-trials\s+)(\d+)",
        r"(\bfrontier_trials\s*=\s*)(\d+)",
        r"(--strategy-population\s+)(\d+)",
        r"(\bstrategy_population\s*=\s*)(\d+)",
        r"(--censor-population\s+)(\d+)",
        r"(\bcensor_population\s*=\s*)(\d+)",
    )
]


@dataclass
class Example:
    """One runnable fenced block: origin, language, and source text."""

    path: Path
    line: int
    lang: str
    text: str


def extract_examples(path: Path) -> List[Example]:
    """All runnable fenced blocks in one markdown file, in order."""
    examples: List[Example] = []
    lines = path.read_text().splitlines()
    index = 0
    while index < len(lines):
        match = re.match(r"^```(\w+)\s*$", lines[index])
        if not match or match.group(1) not in RUNNABLE_LANGS:
            index += 1
            continue
        skip = index > 0 and SKIP_MARKER in lines[index - 1]
        start = index + 1
        end = start
        while end < len(lines) and not lines[end].startswith("```"):
            end += 1
        if not skip:
            examples.append(
                Example(
                    path=path,
                    line=index + 1,
                    lang=RUNNABLE_LANGS[match.group(1)],
                    text="\n".join(lines[start:end]) + "\n",
                )
            )
        index = end + 1
    return examples


def clamp_knobs(text: str, cap: int) -> str:
    """Clamp every recognized numeric workload knob in ``text`` to ``cap``."""

    def _clamp(match: "re.Match[str]") -> str:
        return match.group(1) + str(min(int(match.group(2)), cap))

    for pattern in _KNOB_PATTERNS:
        text = pattern.sub(_clamp, text)
    return text


def run_example(example: Example, cwd: Path, env: dict, cap: Optional[int]) -> int:
    """Execute one block; prints its output on failure; returns exit code."""
    text = example.text if cap is None else clamp_knobs(example.text, cap)
    suffix = ".sh" if example.lang == "bash" else ".py"
    with tempfile.NamedTemporaryFile(
        "w", suffix=suffix, dir=cwd, delete=False
    ) as handle:
        handle.write(text)
        script = handle.name
    if example.lang == "bash":
        command = ["bash", "-e", script]
    else:
        command = [sys.executable, script]
    proc = subprocess.run(
        command, cwd=cwd, env=env, capture_output=True, text=True
    )
    if proc.returncode != 0:
        print(f"FAIL {example.path}:{example.line} ({example.lang})")
        print("----- block -----")
        print(text, end="")
        print("----- stdout -----")
        print(proc.stdout, end="")
        print("----- stderr -----")
        print(proc.stderr, end="")
    else:
        print(f"ok   {example.path}:{example.line} ({example.lang})")
    os.unlink(script)
    return proc.returncode


def main(argv: List[str]) -> int:
    """Run every example in the given markdown files/directories."""
    if not argv:
        print("usage: run_doc_examples.py FILE_OR_DIR [...]", file=sys.stderr)
        return 2
    files: List[Path] = []
    for arg in argv:
        path = Path(arg)
        files.extend(sorted(path.glob("*.md")) if path.is_dir() else [path])

    repo_src = (Path(__file__).resolve().parent.parent / "src").resolve()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cap_text = os.environ.get("REPRO_DOC_MAX_TRIALS")
    cap = int(cap_text) if cap_text else None

    total = failed = 0
    for path in files:
        examples = extract_examples(path)
        if not examples:
            continue
        with tempfile.TemporaryDirectory(prefix="doc-examples-") as scratch:
            for example in examples:
                total += 1
                if run_example(example, Path(scratch), env, cap) != 0:
                    failed += 1
    print(f"{total - failed}/{total} doc examples passed" + (
        f" (knobs clamped to {cap})" if cap else ""
    ))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
