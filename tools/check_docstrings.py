#!/usr/bin/env python
"""Docstring lint: every public API in the given trees must be documented.

A small pydocstyle-flavoured checker with no dependencies, enforced in
CI (and by ``tests/test_docstrings.py``) for ``src/repro/campaign``,
``src/repro/obs``, ``src/repro/censors/adaptive.py``, and
``src/repro/core/evolution/coevolve.py`` so new public APIs ship
documented. Arguments may be directories (checked recursively) or
single files. Rules:

- every module has a docstring;
- every public class (name not starting with ``_``) has a docstring;
- every public function and method has a docstring, including
  properties; dunder methods and anything underscore-prefixed are
  exempt, as are nested (closure) functions.

Usage::

    python tools/check_docstrings.py src/repro/campaign src/repro/obs

Exits non-zero listing each violation as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

Violation = Tuple[Path, int, str]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_body(
    path: Path, parent: str, body: Iterable[ast.stmt], out: List[Violation]
) -> None:
    """Check one class or module body (does not recurse into functions)."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                out.append(
                    (path, node.lineno, f"public function {parent}{node.name} lacks a docstring")
                )
        elif isinstance(node, ast.ClassDef):
            if _is_public(node.name):
                if ast.get_docstring(node) is None:
                    out.append(
                        (path, node.lineno, f"public class {parent}{node.name} lacks a docstring")
                    )
                _check_body(path, f"{parent}{node.name}.", node.body, out)


def check_file(path: Path) -> List[Violation]:
    """All docstring violations in one Python source file."""
    out: List[Violation] = []
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        out.append((path, 1, "module lacks a docstring"))
    _check_body(path, "", tree.body, out)
    return out


def check_trees(roots: Iterable[Path]) -> List[Violation]:
    """All violations across the given files or directory trees."""
    out: List[Violation] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            out.extend(check_file(path))
    return out


def main(argv: List[str]) -> int:
    """CLI entry point: check each argument tree, report, set exit code."""
    if not argv:
        print("usage: check_docstrings.py PATH [PATH ...]", file=sys.stderr)
        return 2
    violations = check_trees([Path(arg) for arg in argv])
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"{len(violations)} docstring violation(s)")
        return 1
    print(f"docstrings OK across {len(argv)} tree(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
