"""Benchmark S3 — regenerate §3 (client-side strategies do not generalize).

Verifies working client-side TCB-teardown strategies, derives their
server-side analogs (insertion packet before/after the SYN+ACK) and shows
none of the analogs work — the observation that motivated the paper's
blank-slate server-side search.
"""

from repro.eval.generalization import format_generalization, run_generalization


def test_section3_generalization(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_generalization,
        kwargs={"trials": 25, "seed": 4},
        rounds=1,
        iterations=1,
    )
    save_artifact("section3_generalization.txt", format_generalization(result))
    # Paper: every working client-side species works; 0 of the analogs do.
    assert result.client_working_count == len(result.client_side_working)
    assert result.analogs_working_count == 0
    # The analogs are not merely weak — they sit at the baseline miss rate.
    assert all(rate <= 0.15 for rate in result.analog_rates.values())
