"""Shared helpers for the benchmark/regeneration suite.

Each benchmark regenerates one of the paper's tables or figures and saves
the rendered artifact (measured values next to the paper's) under
``benchmarks/results/``. Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    """Directory artifacts are written into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write one regenerated artifact to disk (and echo to stdout)."""

    def write(name: str, text: str) -> None:
        path = artifact_dir / name
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return write
