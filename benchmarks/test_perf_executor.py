"""Performance benchmarks for the batch trial executor.

The headline numbers for ``repro.runtime``: wall-clock speedup of a
100-trial batch under a 4-worker pool versus the serial path, and the
cost of a cache-warm rerun (which must execute nothing at all). The
measured comparison is recorded in ``benchmarks/results/``.

Speedup assertions are honest about hardware: the parallel target
(>= 2x with 4 workers) is only asserted when the machine actually has
the cores to show it; the measured numbers are always recorded. The
cache-warm target holds on any machine — a warm run does no simulation
work — and is asserted unconditionally.
"""

import os
import time

from repro.core import deployed_strategy
from repro.runtime import TrialExecutor, TrialSpec, trial_seed

TRIALS = 100


def batch_specs():
    strategy = deployed_strategy(1)
    return [
        TrialSpec.build("china", "smtp", strategy, seed=trial_seed(0, index))
        for index in range(TRIALS)
    ]


def best_of(runs, fn):
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_perf_batch_serial(benchmark):
    specs = batch_specs()
    executor = TrialExecutor(workers=1)
    results = benchmark(executor.run_batch, specs)
    assert len(results) == TRIALS


def test_perf_batch_parallel_4_workers(benchmark):
    specs = batch_specs()
    with TrialExecutor(workers=4) as executor:
        executor.run_batch(specs[:4])  # create and warm the pool
        results = benchmark(executor.run_batch, specs)
        assert len(results) == TRIALS


def test_executor_speedup_artifact(save_artifact, tmp_path):
    specs = batch_specs()
    cores = os.cpu_count() or 1

    serial = TrialExecutor(workers=1)
    serial.run_batch(specs[:4])  # warm imports
    t_serial = best_of(3, lambda: serial.run_batch(specs))
    baseline = [r.outcome for r in serial.run_batch(specs)]

    with TrialExecutor(workers=4) as parallel:
        parallel.run_batch(specs[:4])  # create and warm the pool
        t_parallel = best_of(3, lambda: parallel.run_batch(specs))
        assert [r.outcome for r in parallel.run_batch(specs)] == baseline

    cold = TrialExecutor(cache=tmp_path / "store")
    t_cold = best_of(1, lambda: cold.run_batch(specs))
    assert cold.last_stats.executed == TRIALS

    warm = TrialExecutor(cache=tmp_path / "store")
    t_warm = best_of(3, lambda: warm.run_batch(specs))
    assert warm.last_stats.executed == 0
    assert warm.last_stats.cache_hits == TRIALS
    assert [r.outcome for r in warm.run_batch(specs)] == baseline

    parallel_speedup = t_serial / t_parallel
    cache_speedup = t_serial / t_warm

    save_artifact(
        "executor_speedup.txt",
        "\n".join(
            [
                f"batch: {TRIALS} trials, china/smtp, deployed strategy 1",
                f"machine: {cores} core(s)",
                "",
                f"serial (workers=1):        {t_serial * 1000:8.1f} ms",
                f"parallel (workers=4):      {t_parallel * 1000:8.1f} ms"
                f"   speedup {parallel_speedup:.2f}x",
                f"cache cold (store+run):    {t_cold * 1000:8.1f} ms",
                f"cache warm (0 executions): {t_warm * 1000:8.1f} ms"
                f"   speedup {cache_speedup:.2f}x",
                "",
                "parallel target (>=2x with 4 workers) asserted on >=4 cores; "
                "measured values above are from this machine.",
            ]
        ),
    )

    # A warm cache does no simulation work at all — this must hold on
    # any hardware.
    assert cache_speedup >= 2.0
    if cores >= 4:
        assert parallel_speedup >= 2.0
    elif cores >= 2:
        assert parallel_speedup >= 1.2
