"""Performance benchmarks for the batch trial executor.

The headline numbers for ``repro.runtime``: wall-clock speedup of a
100-trial batch under a 4-worker pool versus the serial path, and the
cost of a cache-warm rerun (which must execute nothing at all). The
measured comparison is recorded in ``benchmarks/results/``.

Speedup assertions are honest about hardware: the parallel target
(>= 2x with 4 workers) is only asserted when the machine actually has
the cores to show it; the measured numbers are always recorded. The
cache-warm target holds on any machine — a warm run does no simulation
work — and is asserted unconditionally.
"""

import json
import os
import pathlib
import time

from repro import fastpath
from repro.core import deployed_strategy
from repro.runtime import TrialExecutor, TrialSpec, trial_seed

TRIALS = 100

#: Committed cold-path baseline (kept outside ``results/`` so regenerating
#: artifacts cannot silently move the regression bar). The gated quantity
#: is the fastpath on/off *ratio* — a machine-independent measure of what
#: the fast path buys — not absolute wall time.
COLDPATH_BASELINE = pathlib.Path(__file__).parent / "coldpath_baseline.json"

#: PR-1's measured cold-path cost on the reference machine (ms/trial for
#: the same 100-trial china/smtp strategy-1 batch), from
#: ``results/executor_speedup.txt`` at the time the baseline was taken.
PR1_MS_PER_TRIAL = 1.748


def batch_specs():
    strategy = deployed_strategy(1)
    return [
        TrialSpec.build("china", "smtp", strategy, seed=trial_seed(0, index))
        for index in range(TRIALS)
    ]


def best_of(runs, fn):
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_perf_batch_serial(benchmark):
    specs = batch_specs()
    executor = TrialExecutor(workers=1)
    results = benchmark(executor.run_batch, specs)
    assert len(results) == TRIALS


def test_perf_batch_parallel_4_workers(benchmark):
    specs = batch_specs()
    with TrialExecutor(workers=4) as executor:
        executor.run_batch(specs[:4])  # create and warm the pool
        results = benchmark(executor.run_batch, specs)
        assert len(results) == TRIALS


def test_executor_speedup_artifact(save_artifact, tmp_path):
    specs = batch_specs()
    cores = os.cpu_count() or 1

    serial = TrialExecutor(workers=1)
    serial.run_batch(specs[:4])  # warm imports
    t_serial = best_of(3, lambda: serial.run_batch(specs))
    baseline = [r.outcome for r in serial.run_batch(specs)]

    with TrialExecutor(workers=4) as parallel:
        parallel.run_batch(specs[:4])  # create and warm the pool
        t_parallel = best_of(3, lambda: parallel.run_batch(specs))
        assert [r.outcome for r in parallel.run_batch(specs)] == baseline

    cold = TrialExecutor(cache=tmp_path / "store")
    t_cold = best_of(1, lambda: cold.run_batch(specs))
    assert cold.last_stats.executed == TRIALS

    warm = TrialExecutor(cache=tmp_path / "store")
    t_warm = best_of(3, lambda: warm.run_batch(specs))
    assert warm.last_stats.executed == 0
    assert warm.last_stats.cache_hits == TRIALS
    assert [r.outcome for r in warm.run_batch(specs)] == baseline

    parallel_speedup = t_serial / t_parallel
    cache_speedup = t_serial / t_warm

    save_artifact(
        "executor_speedup.txt",
        "\n".join(
            [
                f"batch: {TRIALS} trials, china/smtp, deployed strategy 1",
                f"machine: {cores} core(s)",
                "",
                f"serial (workers=1):        {t_serial * 1000:8.1f} ms",
                f"parallel (workers=4):      {t_parallel * 1000:8.1f} ms"
                f"   speedup {parallel_speedup:.2f}x",
                f"cache cold (store+run):    {t_cold * 1000:8.1f} ms",
                f"cache warm (0 executions): {t_warm * 1000:8.1f} ms"
                f"   speedup {cache_speedup:.2f}x",
                "",
                "parallel target (>=2x with 4 workers) asserted on >=4 cores; "
                "measured values above are from this machine.",
            ]
        ),
    )

    # A warm cache does no simulation work at all — this must hold on
    # any hardware.
    assert cache_speedup >= 2.0
    if cores >= 4:
        assert parallel_speedup >= 2.0
    elif cores >= 2:
        assert parallel_speedup >= 1.2


def _coldpath_ms_per_trial(runs=3):
    """Best-of-N cold-path cost (ms/trial) for the Table 2 driver shape."""
    strategy = deployed_strategy(1)

    def run_batch():
        for index in range(TRIALS):
            TrialSpec.build(
                "china", "smtp", strategy, seed=trial_seed(0, index)
            ).run()

    run_batch()  # warm imports and memo caches
    return best_of(runs, run_batch) * 1000.0 / TRIALS


def test_perf_coldpath_trials(benchmark):
    """pytest-benchmark view of the uncached (cold) trial path."""
    strategy = deployed_strategy(1)
    specs = [
        TrialSpec.build("china", "smtp", strategy, seed=trial_seed(0, i))
        for i in range(TRIALS)
    ]

    def run_all():
        return [spec.run() for spec in specs]

    results = benchmark(run_all)
    assert len(results) == TRIALS


def test_coldpath_speedup_artifact(save_artifact):
    """Measure the cold path with the fast path on vs off, record the
    artifact, and gate on regression against the committed baseline.

    Honest about hardware (the executor-speedup precedent): absolute
    trials/sec varies wildly across machines, so the *gate* compares the
    fastpath on/off ratio — the same trials on the same machine in the
    same process — against the committed baseline ratio, failing on a
    >20% regression. Measured values are always recorded, including the
    comparison against PR-1's absolute per-trial cost.
    """
    assert fastpath.enabled(), "benchmark assumes the default-on fast path"

    ms_on = _coldpath_ms_per_trial()
    with fastpath.disabled():
        ms_off = _coldpath_ms_per_trial()

    # Verdict equivalence on the exact benchmark workload.
    strategy = deployed_strategy(1)
    verdicts_on = [
        TrialSpec.build("china", "smtp", strategy, seed=trial_seed(0, i)).run().outcome
        for i in range(TRIALS)
    ]
    with fastpath.disabled():
        verdicts_off = [
            TrialSpec.build("china", "smtp", strategy, seed=trial_seed(0, i)).run().outcome
            for i in range(TRIALS)
        ]
    assert verdicts_on == verdicts_off

    ratio = ms_off / ms_on
    vs_pr1 = PR1_MS_PER_TRIAL / ms_on
    baseline = json.loads(COLDPATH_BASELINE.read_text())

    save_artifact(
        "coldpath_speedup.txt",
        "\n".join(
            [
                f"cold path: {TRIALS} uncached trials, china/smtp, "
                "deployed strategy 1",
                f"machine: {os.cpu_count() or 1} core(s)",
                "",
                f"fastpath on  (pooled packets, cached wire images, "
                f"coalesced hops, no trace): {ms_on:6.3f} ms/trial "
                f"({1000.0 / ms_on:7.0f} trials/sec)",
                f"fastpath off (REPRO_FASTPATH=0 reference path):        "
                f"       {ms_off:6.3f} ms/trial "
                f"({1000.0 / ms_off:7.0f} trials/sec)",
                "",
                f"fastpath on/off ratio:        {ratio:.2f}x "
                f"(committed baseline {baseline['ratio']:.2f}x, "
                "gate: >= 0.8x of baseline)",
                f"vs PR-1 reference machine:    {vs_pr1:.2f}x "
                f"(PR-1 measured {PR1_MS_PER_TRIAL:.3f} ms/trial on its "
                "machine; cross-machine, informational only)",
                "",
                "verdicts: identical across paths on all "
                f"{TRIALS} benchmark trials.",
                "The on/off ratio is the gated quantity: it compares the "
                "same workload on the same machine, so a CI failure means "
                "the fast path itself regressed, not the hardware.",
            ]
        ),
    )

    # Regression gate: >20% drop of the on/off ratio vs the committed
    # baseline fails the benchmark (and the CI smoke job running it).
    assert ratio >= 0.8 * baseline["ratio"], (
        f"cold-path fastpath ratio regressed: measured {ratio:.2f}x, "
        f"committed baseline {baseline['ratio']:.2f}x"
    )
    # The fast path must actually pay for its complexity on any machine.
    assert ratio >= 1.15
