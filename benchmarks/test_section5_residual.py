"""Benchmark S8 — regenerate §4.2's residual-censorship observations.

HTTP: ~90 seconds of teardown for any new connection to the same server
IP/port. DNS-over-TCP, FTP, SMTP: no residual censorship — an immediate
follow-up request succeeds.
"""

from repro.eval.residual import residual_probe


def _run_all():
    return {
        ("http", 10.0): residual_probe("http", 10.0, seed=1),
        ("http", 60.0): residual_probe("http", 60.0, seed=2),
        ("http", 120.0): residual_probe("http", 120.0, seed=3),
        ("dns", 1.0): residual_probe("dns", 1.0, seed=4),
        ("ftp", 1.0): residual_probe("ftp", 1.0, seed=5),
        ("smtp", 1.0): residual_probe("smtp", 1.0, seed=11),
    }


def test_section5_residual_censorship(benchmark, save_artifact):
    probes = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = ["§4.2 residual censorship (second request = benign follow-up)"]
    for (protocol, delay), probe in probes.items():
        lines.append(
            f"{protocol:<6} delay={delay:>6.1f}s  first={probe.first_outcome:<9}"
            f" second={probe.second_outcome:<9} evaded={probe.second_succeeded}"
        )
    save_artifact("section5_residual.txt", "\n".join(lines))

    # Within the ~90s window HTTP follow-ups are torn down...
    assert not probes[("http", 10.0)].second_succeeded
    assert not probes[("http", 60.0)].second_succeeded
    # ...and succeed once it expires.
    assert probes[("http", 120.0)].second_succeeded
    # No residual censorship for the other protocols.
    for protocol in ("dns", "ftp", "smtp"):
        assert probes[(protocol, 1.0)].second_succeeded, protocol
