"""Benchmark T2 — regenerate Table 2 (strategy success rates, all countries).

The headline artifact: measured success percentages for every strategy ×
country × protocol cell next to the paper's values. Shape assertions check
the reproduction criteria — who wins, by roughly what factor — without
demanding the exact percentages (the paper's own rates carry measurement
noise from live censors).
"""

import pytest

from repro.eval.table2 import format_table2, generate_table2

TRIALS = 200


@pytest.fixture(scope="module")
def cells():
    return generate_table2(trials=TRIALS, seed=0)


def test_table2_regeneration(benchmark, save_artifact, cells):
    # The heavy lifting happened in the module fixture; benchmark a single
    # representative cell so timing data is still collected.
    from repro.core import deployed_strategy
    from repro.eval import success_rate

    benchmark.pedantic(
        success_rate,
        args=("china", "http", deployed_strategy(1)),
        kwargs={"trials": 25, "seed": 999},
        rounds=1,
        iterations=1,
    )
    save_artifact("table2_success_rates.txt", format_table2(cells))
    assert len(cells) == 45 + 11  # China block + other-country rows
    # Shape assertions also run here so `--benchmark-only` exercises them.
    test_table2_china_shape(cells)
    test_table2_other_countries_exact(cells)
    test_table2_key_orderings(cells)


def _cell(cells, country, number, protocol):
    return next(
        c
        for c in cells
        if (c.country, c.strategy_number, c.protocol) == (country, number, protocol)
    )


def test_table2_china_shape(cells):
    """Every China cell within a reproduction tolerance of the paper."""
    for cell in cells:
        if cell.country != "china":
            continue
        assert cell.delta is not None
        assert abs(cell.delta) <= 15, (
            cell.strategy_number,
            cell.protocol,
            cell.measured_pct,
            cell.paper,
        )


def test_table2_other_countries_exact(cells):
    for cell in cells:
        if cell.country == "china":
            continue
        assert abs(cell.delta) <= 5, (cell.country, cell.strategy_number)


def test_table2_key_orderings(cells):
    """The qualitative wins the paper highlights."""
    # HTTPS: payload strategies beat RST strategies (rule 2 excludes HTTPS).
    assert (
        _cell(cells, "china", 2, "https").measured
        > _cell(cells, "china", 7, "https").measured + 0.3
    )
    # FTP: corrupt-ack + payload (S5) is the best FTP strategy.
    s5 = _cell(cells, "china", 5, "ftp").measured
    assert all(
        s5 >= _cell(cells, "china", n, "ftp").measured for n in range(1, 9)
    )
    # SMTP: window reduction always works; HTTP: it never does.
    assert _cell(cells, "china", 8, "smtp").measured >= 0.95
    assert _cell(cells, "china", 8, "http").measured <= 0.1
    # DNS retries push sim-open strategies near 90%.
    assert _cell(cells, "china", 1, "dns").measured >= 0.75
