"""Performance benchmark for fleet-mode serving.

The headline number: flows/sec for a 1000-client mixed-country fleet in
one shared world, recorded to ``benchmarks/results/fleet_throughput.txt``.

The *gated* quantity follows the cold-path precedent: absolute flows/sec
varies wildly across machines, so the regression gate compares the
**overhead ratio** — fleet ms/flow divided by dedicated-trial ms/trial
for the same flow plans, measured back-to-back in the same process —
against the committed baseline in ``benchmarks/fleet_baseline.json``. A
ratio blow-up means the shared-world machinery (flow-tagged scheduler,
router, recycling) itself regressed, not the hardware.
"""

import json
import os
import pathlib
import time

from repro.deploy import install_per_client
from repro.eval.runner import Trial
from repro.fleet import FleetSpec, FleetWorld, derive_flow_rngs, fleet_selector

CLIENTS = 1000

#: Dedicated-trial sample size for the ratio denominator (the per-trial
#: cost is flat, so a sample is representative at a fraction of the time).
TRIAL_SAMPLE = 200

#: Committed baseline (outside ``results/`` so regenerating artifacts
#: cannot silently move the regression bar).
FLEET_BASELINE = pathlib.Path(__file__).parent / "fleet_baseline.json"


def fleet_spec():
    return FleetSpec(clients=CLIENTS, seed=7, spacing=0.05)


def run_fleet_world(spec):
    world = FleetWorld(spec)
    records = world.run()
    assert len(records) == spec.clients
    assert world.recycled == spec.clients
    return records


def test_perf_fleet_1k_flows(benchmark):
    """pytest-benchmark view of the 1000-client fleet world."""
    spec = fleet_spec()
    records = benchmark(run_fleet_world, spec)
    assert len(records) == CLIENTS


def test_fleet_throughput_artifact(save_artifact):
    """Record flows/sec and gate the fleet-vs-trial overhead ratio."""
    spec = fleet_spec()
    run_fleet_world(spec)  # warm imports and memo caches

    start = time.perf_counter()
    records = run_fleet_world(spec)
    fleet_seconds = time.perf_counter() - start
    ms_per_flow = fleet_seconds * 1000.0 / CLIENTS
    flows_per_sec = CLIENTS / fleet_seconds

    # Dedicated-trial cost for the same flow plans (the classic
    # one-world-per-connection path with the same per-client engine).
    plans = spec.flow_plans()[:TRIAL_SAMPLE]

    def run_dedicated():
        for plan in plans:
            trial = Trial(
                plan.country,
                plan.protocol,
                None,
                seed=plan.seed,
                client_ip=plan.client_ip,
                client_os=plan.client_os,
            )
            install_per_client(
                trial.server_host,
                fleet_selector(),
                plan.protocol,
                derive_flow_rngs(plan.seed).strategy,
            )
            trial.run()

    run_dedicated()  # warm
    start = time.perf_counter()
    run_dedicated()
    ms_per_trial = (time.perf_counter() - start) * 1000.0 / TRIAL_SAMPLE

    overhead_ratio = ms_per_flow / ms_per_trial
    baseline = json.loads(FLEET_BASELINE.read_text())

    evaded = sum(1 for r in records if r["succeeded"])
    save_artifact(
        "fleet_throughput.txt",
        "\n".join(
            [
                f"fleet: {CLIENTS} concurrent client flows, default "
                "mixed-country cohort, one deployed server",
                f"machine: {os.cpu_count() or 1} core(s)",
                "",
                f"fleet world:      {ms_per_flow:6.3f} ms/flow "
                f"({flows_per_sec:7.0f} flows/sec)",
                f"dedicated trials: {ms_per_trial:6.3f} ms/trial "
                f"(sample of {TRIAL_SAMPLE} plans, classic path)",
                "",
                f"overhead ratio:   {overhead_ratio:.2f}x "
                f"(committed baseline {baseline['overhead_ratio']:.2f}x, "
                "gate: <= 1.25x of baseline)",
                f"evaded: {evaded}/{CLIENTS} flows",
                "",
                "The overhead ratio is the gated quantity: it compares "
                "the same flows on the same machine, so a CI failure "
                "means the shared-world machinery regressed, not the "
                "hardware.",
            ]
        ),
    )

    # Regression gate: the shared world may not get >25% more expensive
    # per flow, relative to the dedicated-trial path, than the committed
    # baseline ratio.
    assert overhead_ratio <= 1.25 * baseline["overhead_ratio"], (
        f"fleet overhead regressed: measured {overhead_ratio:.2f}x the "
        f"dedicated-trial cost, committed baseline "
        f"{baseline['overhead_ratio']:.2f}x"
    )
    # Sanity floor on any machine: the fleet world must actually sustain
    # a serving-scale stream (hundreds of flows/sec even on slow CI).
    assert flows_per_sec >= 50
