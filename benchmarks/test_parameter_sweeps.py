"""Benchmark SWP — parameter sweeps around the paper's point measurements.

Maps the operating envelopes: the window-size crossover for Strategy 8,
the (linear) dependence of sim-open strategies on the GFW's resync-entry
probability, and Kazakhstan's 15-second MITM interception window.
"""

from repro.eval.sweeps import (
    format_sweep,
    mitm_retry_sweep,
    resync_probability_sweep,
    window_size_sweep,
)


def test_window_size_crossover(benchmark, save_artifact):
    rates = benchmark.pedantic(
        window_size_sweep,
        kwargs={"windows": (2, 5, 10, 20, 30, 40, 60, 100, 200), "trials": 8, "seed": 1},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "sweep_window_size.txt",
        format_sweep("Strategy 8 success vs advertised window (India/HTTP)", rates, "B"),
    )
    assert rates[10] == 1.0
    assert rates[200] == 0.0
    # The crossover sits where one segment first spans the censored Host.
    crossover = min(w for w, rate in rates.items() if rate < 0.5)
    assert 20 < crossover <= 60


def test_resync_probability_sensitivity(benchmark, save_artifact):
    rates = benchmark.pedantic(
        resync_probability_sweep,
        kwargs={"probabilities": (0.0, 0.25, 0.5, 0.75, 1.0), "trials": 120, "seed": 2},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "sweep_resync_probability.txt",
        format_sweep("Strategy 1 success vs GFW resync-entry probability", rates),
    )
    # Near-linear tracking: success ≈ miss + (1 - miss) * probability.
    for probability, rate in rates.items():
        predicted = 0.03 + 0.97 * probability
        assert abs(rate - predicted) < 0.12, (probability, rate, predicted)


def test_mitm_window_duration(benchmark, save_artifact):
    results = benchmark.pedantic(
        mitm_retry_sweep,
        kwargs={"delays": (1.0, 5.0, 10.0, 14.0, 16.0, 20.0, 30.0)},
        rounds=1,
        iterations=1,
    )
    save_artifact(
        "sweep_mitm_window.txt",
        format_sweep("Kazakhstan MITM: packet forwarded at t+delay?", results, "s"),
    )
    assert not results[14.0] and results[16.0]  # the paper's ~15 s window
