"""Benchmark S4b — §4.2's vantage-point invariance.

Strategy effectiveness must not depend on the client's vantage point or
the external server's location (modelled as topology variations).
"""

from repro.eval.stats import Proportion, two_proportion_z
from repro.eval.vantage import format_vantages, measure_across_vantages

TRIALS = 120


def test_vantage_invariance(benchmark, save_artifact):
    rates = benchmark.pedantic(
        measure_across_vantages,
        kwargs={"strategy_number": 1, "protocol": "http", "trials": TRIALS, "seed": 0},
        rounds=1,
        iterations=1,
    )
    save_artifact("section4_vantages.txt", format_vantages(rates))

    values = list(rates.values())
    # No pair of vantage points differs significantly (two-proportion z).
    for i, a in enumerate(values):
        for b in values[i + 1 :]:
            z = two_proportion_z(
                Proportion(round(a * TRIALS), TRIALS),
                Proportion(round(b * TRIALS), TRIALS),
            )
            assert abs(z) < 2.5, rates
    # All vantage points sit in the strategy's ~50% band.
    assert all(0.35 <= value <= 0.7 for value in values), rates
