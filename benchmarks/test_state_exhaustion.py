"""Ablation: bounded GFW flow tables and state-exhaustion evasion.

§2.1: "Maintaining a TCB on a per-flow basis is challenging at scale, and
thus on-path censors naturally take several shortcuts. Such shortcuts
make censors more scalable, but also more susceptible to evasion." With a
bounded per-box flow table, a SYN flood evicts the censor's TCB for a
real connection and the forbidden request passes uninspected.
"""

import random

from repro.censors import GreatFirewall
from repro.eval import run_trial
from repro.eval.runner import Trial
from repro.netsim import Middlebox
from repro.packets import make_tcp_packet


class SynFlooder(Middlebox):
    """Client-side box that sprays decoy SYNs alongside real traffic."""

    name = "flooder"

    def __init__(self, per_packet: int = 40):
        self.per_packet = per_packet
        self._spray = 0

    def process(self, packet, direction, ctx):
        out = [packet]
        if direction == "c2s":
            for _ in range(self.per_packet):
                self._spray += 1
                decoy = make_tcp_packet(
                    "10.1.0.2", "192.0.2.10", 50000 + self._spray % 10000, 80,
                    flags="S", seq=self._spray,
                )
                out.append(decoy)
        return out


def _rate(max_flows, flood, trials=40, seed=0):
    wins = 0
    for index in range(trials):
        trial_seed = seed + index * 7919
        censor = GreatFirewall(
            rng=random.Random(trial_seed ^ 0xF00D), max_flows_per_box=max_flows
        )
        boxes = [SynFlooder()] if flood else []
        wins += run_trial(
            "china", "http", None, seed=trial_seed, censor=censor,
            client_side_boxes=boxes,
        ).succeeded
    return wins / trials


def test_state_exhaustion_ablation(benchmark, save_artifact):
    unbounded_flooded = _rate(max_flows=None, flood=True)
    bounded_quiet = _rate(max_flows=64, flood=False)
    bounded_flooded = benchmark.pedantic(
        _rate, args=(64, True), kwargs={"trials": 40}, rounds=1, iterations=1
    )
    text = (
        "Ablation: bounded GFW flow tables (no evasion strategy, HTTP)\n"
        f"unbounded table + SYN flood:   {unbounded_flooded * 100:.0f}% uncensored\n"
        f"64-flow table, no flood:       {bounded_quiet * 100:.0f}% uncensored\n"
        f"64-flow table + SYN flood:     {bounded_flooded * 100:.0f}% uncensored\n"
        "paper (§2.1): scale shortcuts make censors more susceptible to evasion"
    )
    save_artifact("ablation_state_exhaustion.txt", text)
    assert unbounded_flooded <= 0.1   # flooding alone doesn't help
    assert bounded_quiet <= 0.1       # bounding alone doesn't either
    assert bounded_flooded >= 0.9     # together: the TCB is evicted
