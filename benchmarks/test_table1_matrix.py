"""Benchmark T1 — regenerate Table 1 (censored-protocol matrix).

Probes every (country, protocol) pair with forbidden requests and checks
the measured censorship matrix against the paper's Table 1.
"""

from repro.eval.matrix import format_matrix, measure_censorship_matrix


def test_table1_matrix(benchmark, save_artifact):
    entries = benchmark.pedantic(
        measure_censorship_matrix, kwargs={"seed": 0}, rounds=1, iterations=1
    )
    text = format_matrix(entries)
    save_artifact("table1_matrix.txt", text)
    mismatches = [e for e in entries if e.censored != e.expected]
    assert not mismatches, mismatches
