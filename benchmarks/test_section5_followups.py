"""Benchmark S5x — regenerate §5's instrumented follow-up experiments.

These are the causal probes that *explain* the strategies: sequence
offsets, induced-RST suppression, RST-seq matching, and the Kazakhstan
payload/GET sweeps and censor-probing injections.
"""

from repro.eval.followups import (
    drop_client_rst_probe,
    kz_get_prefix_sweep,
    kz_injection_probe,
    kz_payload_count_sweep,
    kz_payload_size_sweep,
    rst_seq_match_probe,
    seq_offset_probe,
)

TRIALS = 60


def _run_all():
    return {
        "seq-1 with S1 (censored frac)": seq_offset_probe(1, -1, trials=TRIALS, seed=3),
        "seq-1 without strategy (censored frac)": seq_offset_probe(
            None, -1, trials=20, seed=3
        ),
        "S5/ftp with client RST dropped (success)": drop_client_rst_probe(
            5, "ftp", trials=TRIALS, seed=3
        ),
        "S6/ftp with client RST dropped (success)": drop_client_rst_probe(
            6, "ftp", trials=TRIALS, seed=3
        ),
        "S7 request re-sequenced onto RST (censored frac)": rst_seq_match_probe(
            7, trials=TRIALS, seed=3
        ),
        "KZ payload-count sweep": kz_payload_count_sweep(max_copies=5, seed=1),
        "KZ payload-size sweep": kz_payload_size_sweep(sizes=(1, 8, 200), seed=1),
        "KZ GET-prefix sweep": kz_get_prefix_sweep(seed=1),
        "KZ censor-probing injections": kz_injection_probe(seed=1),
    }


def test_section5_followups(benchmark, save_artifact):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = ["§5 follow-up probes (paper expectations in comments)"]
    for name, value in results.items():
        lines.append(f"{name}: {value}")
    save_artifact("section5_followups.txt", "\n".join(lines))

    # Sequence-decrement probe: ~50% censored with the strategy, never without.
    assert 0.3 <= results["seq-1 with S1 (censored frac)"] <= 0.7
    assert results["seq-1 without strategy (censored frac)"] == 0.0
    # Induced-RST suppression kills S5 but not S6.
    assert results["S5/ftp with client RST dropped (success)"] <= 0.15
    assert results["S6/ftp with client RST dropped (success)"] >= 0.35
    # S7's probe: the GFW synchronized onto the induced RST.
    assert results["S7 request re-sequenced onto RST (censored frac)"] >= 0.3
    # Kazakhstan sweeps.
    assert results["KZ payload-count sweep"] == {
        1: False, 2: False, 3: True, 4: True, 5: True
    }
    assert all(results["KZ payload-size sweep"].values())
    sweep = results["KZ GET-prefix sweep"]
    assert sweep["GET / HTTP1."] and not sweep["GET / HTTP1"]
    probes = results["KZ censor-probing injections"]
    assert probes["double forbidden GET"]
    assert probes["sim-open + forbidden GET"]
    assert not probes["single forbidden GET"]
    assert not probes["forbidden then benign GET"]
