"""Benchmark S7 — regenerate §7's client-compatibility results.

The 17-OS × strategy matrix (plus the checksum-corrupted compat variants)
and the wifi / T-Mobile / AT&T network anecdote.
"""

from repro.eval.client_compat import (
    EXPECTED_OS_FAILURES,
    format_os_matrix,
    run_network_matrix,
    run_os_matrix,
)
from repro.tcpstack import PERSONALITIES


def test_section7_os_matrix(benchmark, save_artifact):
    matrix = benchmark.pedantic(
        run_os_matrix, kwargs={"seed": 2}, rounds=1, iterations=1
    )
    save_artifact("section7_os_matrix.txt", format_os_matrix(matrix))

    # Exactly the paper's failures: Strategies 5, 9, 10 on every Windows
    # and macOS version; everything else works everywhere.
    failures = matrix.failures()
    assert failures, "expected some OS incompatibilities"
    for number, os_name in failures:
        family = PERSONALITIES[os_name].family
        assert (number, family) in EXPECTED_OS_FAILURES, (number, os_name)
    windows_and_macos = [
        name for name, p in PERSONALITIES.items() if p.family in ("windows", "macos")
    ]
    for number in (5, 9, 10):
        for os_name in windows_and_macos:
            assert (number, os_name) in failures, (number, os_name)

    # The insertion-packet fix makes them work on every OS (§7).
    for (number, os_name), works in matrix.compat_works.items():
        assert works, (number, os_name)


def test_section7_network_matrix(benchmark, save_artifact):
    results = benchmark.pedantic(
        run_network_matrix, kwargs={"seed": 2}, rounds=1, iterations=1
    )
    lines = ["§7 — network compatibility (Android 10 client, no censor)"]
    for network, row in results.items():
        rendered = "  ".join(
            f"S{number}:{'ok' if ok else 'FAIL'}" for number, ok in sorted(row.items())
        )
        lines.append(f"{network:<10} {rendered}")
    save_artifact("section7_network_matrix.txt", "\n".join(lines))

    assert all(results["wifi"].values())
    assert not results["t-mobile"][1] and not results["t-mobile"][3]
    assert results["t-mobile"][2]
    assert not results["att"][1] and not results["att"][2] and not results["att"][3]
    for number in (4, 6, 7, 8):
        assert results["att"][number] and results["t-mobile"][number]
