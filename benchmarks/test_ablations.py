"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation switches off one modelled censor behaviour and shows which
paper result depends on it:

- resynchronization state off  -> Strategies 1/2/6/7 collapse to baseline;
- simultaneous-open seq bug "fixed" (clients advance seq)  -> n/a at the
  censor; instead we ablate by removing the RST trigger;
- per-box reassembly differences off (all boxes reassemble)  -> Strategy 8
  loses FTP/SMTP;
- checksum validation at the censor on  -> insertion-packet compat
  variants stop working.
"""

import dataclasses
import random

from repro.censors import CHINA_PROFILES, GreatFirewall
from repro.core import compat_strategy, deployed_strategy
from repro.eval import run_trial

TRIALS = 80


def _rate_with_profiles(protocol, strategy, profiles, seed=0, trials=TRIALS):
    wins = 0
    for index in range(trials):
        trial_seed = seed + index * 7919
        censor = GreatFirewall(rng=random.Random(trial_seed ^ 0xA11), profiles=profiles)
        wins += run_trial(
            "china", protocol, strategy, seed=trial_seed, censor=censor
        ).succeeded
    return wins / trials


def _no_resync_profiles():
    return {
        name: dataclasses.replace(profile, event_probs={}, combo_probs={})
        for name, profile in CHINA_PROFILES.items()
    }


def _full_reassembly_profiles():
    return {
        name: dataclasses.replace(profile, reassembly_fail_prob=0.0)
        for name, profile in CHINA_PROFILES.items()
    }


def test_ablation_resync_state(benchmark, save_artifact):
    """Without the resynchronization state, desync strategies die."""
    profiles = _no_resync_profiles()
    rows = {}
    for number in (1, 2, 6, 7):
        rows[number] = _rate_with_profiles(
            "http", deployed_strategy(number), profiles, seed=number
        )
    benchmark.pedantic(
        _rate_with_profiles,
        args=("http", deployed_strategy(1), profiles),
        kwargs={"trials": 10},
        rounds=1,
        iterations=1,
    )
    lines = ["Ablation: resync state disabled (paper rates ~52-54%)"]
    lines += [f"strategy {n}: {rate * 100:.0f}%" for n, rate in rows.items()]
    save_artifact("ablation_resync.txt", "\n".join(lines))
    for number, rate in rows.items():
        assert rate <= 0.12, (number, rate)


def test_ablation_reassembly(benchmark, save_artifact):
    """If every box could reassemble, Strategy 8 would never work."""
    profiles = _full_reassembly_profiles()
    rows = {}
    for protocol in ("ftp", "smtp"):
        rows[protocol] = _rate_with_profiles(
            "ftp" if protocol == "ftp" else "smtp",
            deployed_strategy(8),
            profiles,
            seed=17,
        )
    benchmark.pedantic(
        _rate_with_profiles,
        args=("smtp", deployed_strategy(8), profiles),
        kwargs={"trials": 10},
        rounds=1,
        iterations=1,
    )
    lines = ["Ablation: all boxes reassemble (paper: FTP 47%, SMTP 100%)"]
    lines += [f"{proto}: {rate * 100:.0f}%" for proto, rate in rows.items()]
    save_artifact("ablation_reassembly.txt", "\n".join(lines))
    assert rows["ftp"] <= 0.12
    assert rows["smtp"] <= 0.40  # only the baseline miss rate remains


def test_ablation_censor_checksum_validation(benchmark, save_artifact):
    """Insertion packets only exist because censors skip checksums.

    With a checksum-validating GFW (``validate_checksums=True``), the
    compat variant of Strategy 5 — whose payload rides checksum-corrupted
    insertion packets — collapses to Strategy 4's rate, while the plain
    variant is unaffected.
    """

    def rate(strategy, validate, trials=TRIALS):
        wins = 0
        for index in range(trials):
            trial_seed = 31 + index * 7919
            censor = GreatFirewall(
                rng=random.Random(trial_seed ^ 0xC45), validate_checksums=validate
            )
            wins += run_trial(
                "china", "ftp", strategy, seed=trial_seed, censor=censor
            ).succeeded
        return wins / trials

    plain = rate(deployed_strategy(5), validate=False)
    compat_ok = rate(compat_strategy(5), validate=False)
    compat_validated = rate(compat_strategy(5), validate=True)
    benchmark.pedantic(
        rate, args=(deployed_strategy(5), False), kwargs={"trials": 10},
        rounds=1, iterations=1,
    )
    text = (
        "Ablation: checksum-validating censor (strategy 5 / FTP)\n"
        f"plain strategy, lax censor:    {plain * 100:.0f}%\n"
        f"compat variant, lax censor:    {compat_ok * 100:.0f}%\n"
        f"compat variant, strict censor: {compat_validated * 100:.0f}%"
    )
    save_artifact("ablation_checksums.txt", text)
    assert plain > 0.85
    assert compat_ok > 0.85
    assert compat_validated < 0.5
