"""Performance benchmarks for the generation-batched evolution engine.

The headline comparison: the same GA search (identical trajectory,
asserted) run through the legacy per-individual fitness path versus the
generation-batched, canonical-dedup evaluator — plus a cache-warm rerun
through a persistent :class:`~repro.runtime.ResultCache`, which must
execute nothing.

Honest about hardware (the executor/coldpath precedent): the batched
engine's wall-clock win comes from three multiplicative sources — fewer
genome evaluations (canonical dedup + memo), one executor dispatch per
generation instead of one per individual, and the worker pool across the
whole generation. Only the first two show on a 1-core machine, so the
regression *gate* compares the batched/legacy ratio against the
committed baseline from the same machine class, and the absolute >=5x
target is asserted only where the cores exist to show it.
"""

import json
import os
import pathlib
import time

from repro.core.evolution import CensorTrialEvaluator, GAConfig, GeneticAlgorithm
from repro.runtime import TrialExecutor

#: Committed baseline (outside ``results/`` so regenerating artifacts
#: cannot move the regression bar). The gated quantity is the
#: batched/legacy wall-time ratio for the reference GA search below.
EVOLUTION_BASELINE = pathlib.Path(__file__).parent / "evolution_baseline.json"

COUNTRY, PROTOCOL = "kazakhstan", "http"
TRIALS = 6
CONFIG = dict(population_size=24, generations=6, seed=3)


def best_of(runs, fn):
    times = []
    result = None
    for _ in range(runs):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def _evaluator(**overrides):
    kwargs = dict(country=COUNTRY, protocol=PROTOCOL, trials=TRIALS, seed=9)
    kwargs.update(overrides)
    return CensorTrialEvaluator(**kwargs)


def _run_legacy():
    # The pre-batching shape: a plain callable, so the GA scores one
    # individual per evaluator call, keyed on the genome's spelling.
    evaluator = _evaluator(canonicalize=False, executor=TrialExecutor(workers=1))
    ga = GeneticAlgorithm(lambda s: evaluator(s), config=GAConfig(**CONFIG))
    return ga.run()


def _run_batched(executor):
    ga = GeneticAlgorithm(_evaluator(executor=executor), config=GAConfig(**CONFIG))
    return ga.run()


def result_fields(result):
    return (
        str(result.best),
        result.best_fitness,
        result.history,
        result.generations_run,
        [(str(s), f) for s, f in result.hall_of_fame],
    )


def test_perf_ga_legacy_serial(benchmark):
    result = benchmark(_run_legacy)
    assert result.generations_run > 0


def test_perf_ga_batched(benchmark):
    result = benchmark(lambda: _run_batched(TrialExecutor(workers=1)))
    assert result.generations_run > 0


def test_evolution_speedup_artifact(save_artifact, tmp_path):
    cores = os.cpu_count() or 1
    workers = min(4, cores)

    _run_legacy()  # warm imports and packet pools
    t_legacy, legacy = best_of(3, _run_legacy)

    def batched_run():
        return _run_batched(TrialExecutor(workers=workers))

    t_batched, batched = best_of(3, batched_run)
    assert result_fields(batched) == result_fields(legacy)

    # Cross-run reuse: a fresh GA against a populated persistent cache
    # answers every trial content-addressed on canonical strategy text.
    store = tmp_path / "fitness-cache"
    cold_executor = TrialExecutor(cache=store)
    t_cold, _ = best_of(1, lambda: _run_batched(cold_executor))
    assert cold_executor.total_stats.executed > 0

    warm_executor = TrialExecutor(cache=store)
    t_warm, warm = best_of(3, lambda: _run_batched(warm_executor))
    assert warm_executor.total_stats.executed == 0
    assert result_fields(warm) == result_fields(legacy)

    ratio = t_legacy / t_batched
    warm_ratio = t_legacy / t_warm
    baseline = json.loads(EVOLUTION_BASELINE.read_text())

    save_artifact(
        "evolution_speedup.txt",
        "\n".join(
            [
                f"GA search: {COUNTRY}/{PROTOCOL}, population "
                f"{CONFIG['population_size']}, {CONFIG['generations']} "
                f"generations, {TRIALS} trials/genome",
                f"machine: {cores} core(s), batched arm at {workers} worker(s)",
                "",
                f"legacy (per-individual, spelling-keyed): "
                f"{t_legacy * 1000:8.1f} ms",
                f"batched (canonical dedup, 1 dispatch/gen): "
                f"{t_batched * 1000:8.1f} ms   speedup {ratio:.2f}x",
                f"cache cold (store+run):                   "
                f"{t_cold * 1000:8.1f} ms",
                f"cache warm (0 trials executed):           "
                f"{t_warm * 1000:8.1f} ms   speedup {warm_ratio:.2f}x",
                "",
                f"batched/legacy ratio:  {ratio:.2f}x "
                f"(committed baseline {baseline['ratio']:.2f}x, "
                "gate: >= 0.7x of baseline)",
                "",
                "trajectories: identical EvolutionResult (best, fitness, "
                "history, hall of fame) across all three arms.",
                "The >=5x headline target needs >=4 cores (worker-pool "
                "parallelism multiplies the dedup win); on this machine "
                "the gated quantity is the same-machine batched/legacy "
                "ratio plus the unconditional cache-warm bound.",
            ]
        ),
    )

    # Regression gate vs the committed same-machine-class baseline.
    assert ratio >= 0.7 * baseline["ratio"], (
        f"evolution batching regressed: measured {ratio:.2f}x, "
        f"committed baseline {baseline['ratio']:.2f}x"
    )
    # Dedup + single-dispatch must pay off even with one worker.
    assert ratio >= 1.1
    # A cache-warm rerun executes nothing; that holds on any hardware.
    assert warm_ratio >= 2.0
    if cores >= 4:
        assert ratio >= 5.0
