"""Regenerate the strategy-robustness frontier and gate its batching.

The co-evolution engine's whole performance story is dedup: each epoch's
population x population grid collapses onto the cross-epoch pair memo
before anything is dispatched, and what survives goes out as exactly one
``run_batch``. This benchmark regenerates the China frontier artifact at
the acceptance scale (seed 1, 3 epochs), asserts the batching discipline
(epochs + 1 dispatches, memo hit rate), and checks worker-count
trajectory identity the same way the executor benchmarks do.
"""

import json
import time

from repro.core.evolution import CoevolveConfig, run_coevolution
from repro.runtime import TrialExecutor

CONFIG = CoevolveConfig(epochs=3, seed=1)


def test_coevolve_frontier_artifact(save_artifact):
    start = time.perf_counter()
    serial = run_coevolution("china", config=CONFIG, workers=1)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_coevolution(
        "china", config=CONFIG, executor=TrialExecutor(workers=2)
    )
    t_parallel = time.perf_counter() - start
    assert json.dumps(parallel.as_dict(), sort_keys=True) == json.dumps(
        serial.as_dict(), sort_keys=True
    )

    stats = serial.stats
    # One dispatch per epoch plus the frontier pass — the lockstep grid
    # never degenerates into per-pair dispatches.
    assert stats.batches == CONFIG.epochs + 1
    assert stats.memo_hits > 0
    avoided = stats.memo_hits + stats.duplicates
    lines = [
        f"co-evolution arms race: china/http, {CONFIG.epochs} epochs, "
        f"{CONFIG.strategy_population} strategies x "
        f"{CONFIG.censor_population} censors, seed {CONFIG.seed}",
        "",
        f"{'#':>3} {'strategy':<30} {'static':>7} {'adapted':>8}  status",
    ]
    for entry in serial.frontier:
        lines.append(
            f"{entry.number:>3} {entry.name[:30]:<30} "
            f"{entry.static_rate:>7.2f} {entry.adapted_rate:>8.2f}  "
            f"{entry.status}"
        )
    top = serial.final_censor_hof[0]
    lines += [
        "",
        f"strongest adapted censor (defeats {top['defeat_rate']:.0%} of "
        f"paper strategies): {top['genome']['params']}",
        "",
        f"pair grid: {stats.submitted} pairs submitted, "
        f"{stats.evaluated} evaluated, {avoided} avoided "
        f"({avoided / stats.submitted:.0%}) in {stats.batches} dispatches "
        f"({stats.trials} trials)",
        f"wall: {t_serial * 1000:.0f} ms serial, "
        f"{t_parallel * 1000:.0f} ms at 2 workers "
        "(byte-identical frontier JSON)",
    ]
    save_artifact("coevolve_frontier.txt", "\n".join(lines))

    # The acceptance property: censor adaptation must actually move the
    # frontier — at least one paper strategy degrades.
    assert any(
        entry.status in ("degraded", "collapsed") for entry in serial.frontier
    )
