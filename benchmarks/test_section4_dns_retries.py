"""Benchmark S4 — regenerate §4's DNS retry-amplification analysis.

Measures DNS-over-TCP success versus the number of RFC 7766 retries for a
~50% strategy and compares with the analytic ``1 - (1-p)^n`` curve (the
paper's example: 50% -> 87.5% with 3 tries).
"""

from repro.eval.dns_retries import format_retry_curve, measure_retry_curve


def test_section4_dns_retry_curve(benchmark, save_artifact):
    curve = benchmark.pedantic(
        measure_retry_curve,
        kwargs={"strategy_number": 1, "max_tries": 5, "trials": 150, "seed": 2},
        rounds=1,
        iterations=1,
    )
    from repro.eval.dns_retries import measure_client_profiles

    profiles = measure_client_profiles(strategy_number=1, trials=120, seed=3)
    profile_lines = [
        f"{name:<18} {rate * 100:5.0f}%" for name, rate in profiles.items()
    ]
    save_artifact(
        "section4_dns_retries.txt",
        format_retry_curve(curve)
        + "\n\nreal-world client profiles (§4.2):\n"
        + "\n".join(profile_lines),
    )
    # Chrome's 5-request behaviour dominates dig's 2.
    assert profiles["chrome-windows"] >= profiles["dig-minimal"]
    # Per-try rate is the ~50% ballpark of the sim-open strategies.
    assert 0.35 <= curve.per_try_rate <= 0.65
    # Monotone amplification tracking the analytic curve.
    assert curve.measured[3] > curve.measured[2] > curve.measured[1]
    for tries in (2, 3, 4, 5):
        assert abs(curve.measured[tries] - curve.analytic[tries]) < 0.15
    # The paper's 3-try figure: ~87.5% for a 50% strategy.
    assert curve.measured[3] >= 0.7
