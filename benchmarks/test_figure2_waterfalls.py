"""Benchmark F2 — regenerate Figure 2 (Kazakhstan strategies 9–11)."""

from repro.core import SERVER_STRATEGIES, deployed_strategy
from repro.eval.waterfall import waterfall_for_trial


def _render_all():
    sections = []
    for number in (9, 10, 11):
        title = f"Strategy {number}: {SERVER_STRATEGIES[number].name} (kazakhstan/http)"
        sections.append(
            waterfall_for_trial(
                "kazakhstan", "http", deployed_strategy(number), seed=3, title=title
            )
        )
    return "\n\n".join(sections)


def test_figure2_waterfalls(benchmark, save_artifact):
    text = benchmark.pedantic(_render_all, rounds=1, iterations=1)
    save_artifact("figure2_waterfalls.txt", text)
    assert "outcome: success" in text
    # Signature checks also run here so `--benchmark-only` exercises them.
    test_strategy9_three_loaded_synacks()
    test_strategy10_double_benign_get()
    test_strategy11_no_flags_packet()
    test_censorship_waterfall_shows_blockpage()


def test_strategy9_three_loaded_synacks():
    text = waterfall_for_trial("kazakhstan", "http", deployed_strategy(9), seed=3)
    assert text.count("SYN/ACK (w/ load)") == 3


def test_strategy10_double_benign_get():
    text = waterfall_for_trial("kazakhstan", "http", deployed_strategy(10), seed=3)
    assert text.count("SYN/ACK (w/ GET load)") == 2


def test_strategy11_no_flags_packet():
    text = waterfall_for_trial("kazakhstan", "http", deployed_strategy(11), seed=3)
    assert "(no flags)" in text


def test_censorship_waterfall_shows_blockpage():
    text = waterfall_for_trial("kazakhstan", "http", None, seed=3)
    assert "FIN/PSH/ACK" in text
    assert "censor action" in text
