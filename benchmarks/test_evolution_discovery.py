"""Benchmark GA — Geneva rediscovers server-side strategies (§4.1).

Runs the genetic algorithm against the simulated censors and verifies it
finds working server-side strategies from scratch — the paper's core
methodology. Scales are reduced from the paper's 300×50 (the simulated
fitness landscape is the same one, so convergence is much faster).
"""

from repro.core.evolution import CensorTrialEvaluator, GAConfig, GeneticAlgorithm
from repro.eval import run_trial


def _evolve(country, protocol, seed, trials=2, population=30, generations=30):
    evaluator = CensorTrialEvaluator(country, protocol, trials=trials, seed=5)
    ga = GeneticAlgorithm(
        evaluator,
        config=GAConfig(
            population_size=population,
            generations=generations,
            seed=seed,
            convergence_patience=12,
        ),
    )
    return ga.run()


def test_evolution_against_kazakhstan(benchmark, save_artifact):
    result = benchmark.pedantic(
        _evolve, args=("kazakhstan", "http", 3), rounds=1, iterations=1
    )
    lines = [
        "Geneva evolution vs Kazakhstan (population 30, <=30 generations)",
        f"generations run: {result.generations_run}",
        f"best fitness:    {result.best_fitness:.1f}",
        f"best strategy:   {result.best}",
        "hall of fame:",
    ]
    lines += [f"  {fitness:8.1f}  {text}" for text, fitness in result.hall_of_fame[:5]]
    save_artifact("evolution_kazakhstan.txt", "\n".join(lines))

    assert result.best_fitness > 50
    wins = sum(
        run_trial("kazakhstan", "http", result.best, seed=100 + i).succeeded
        for i in range(6)
    )
    assert wins >= 5


def test_evolution_against_china_http(benchmark, save_artifact):
    result = benchmark.pedantic(
        _evolve,
        args=("china", "http", 11),
        kwargs={"trials": 4},
        rounds=1,
        iterations=1,
    )
    lines = [
        "Geneva evolution vs China/HTTP (population 30, <=30 generations)",
        f"generations run: {result.generations_run}",
        f"best fitness:    {result.best_fitness:.1f}",
        f"best strategy:   {result.best}",
    ]
    save_artifact("evolution_china_http.txt", "\n".join(lines))

    # A ~50%-success strategy scores around 100*0.5 - 50*0.5 - size ≈ 20+.
    assert result.best_fitness > 10
    wins = sum(
        run_trial("china", "http", result.best, seed=200 + i).succeeded
        for i in range(20)
    )
    assert wins >= 6  # comfortably above the 3% no-evasion baseline
