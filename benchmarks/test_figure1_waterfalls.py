"""Benchmark F1 — regenerate Figure 1 (China strategies 1–8 waterfalls).

Renders the client/server packet waterfall for each China strategy,
checking each diagram shows the paper's characteristic packet pattern.
"""

import pytest

from repro.core import SERVER_STRATEGIES, deployed_strategy
from repro.eval.waterfall import waterfall_for_trial

#: (strategy, protocol to demo on, seed chosen so the strategy succeeds).
_CASES = {
    1: ("http", 3),
    2: ("http", 1),
    3: ("ftp", 3),
    4: ("ftp", 23),
    5: ("ftp", 1),
    6: ("http", 23),
    7: ("http", 23),
    8: ("smtp", 1),
}


def _render_all():
    sections = []
    for number, (protocol, seed) in _CASES.items():
        title = f"Strategy {number}: {SERVER_STRATEGIES[number].name} ({protocol})"
        sections.append(
            waterfall_for_trial(
                "china", protocol, deployed_strategy(number), seed=seed, title=title
            )
        )
    return "\n\n".join(sections)


_SIGNATURES = [
    (1, "RST"),                # injected RST opens the strategy
    (2, "SYN (w/ load)"),      # payload-bearing SYN
    (3, "bad ackno"),          # corrupted ack number
    (5, "SYN/ACK (w/ load"),   # payload on a SYN+ACK
    (6, "FIN (w/ load)"),      # payload on a FIN
    (8, "small window"),       # window reduction
]


def test_figure1_waterfalls(benchmark, save_artifact):
    text = benchmark.pedantic(_render_all, rounds=1, iterations=1)
    save_artifact("figure1_waterfalls.txt", text)
    for number in _CASES:
        assert f"Strategy {number}:" in text
    # Signature checks also run here so `--benchmark-only` exercises them.
    for number, needle in _SIGNATURES:
        assert needle in text, (number, needle)
    test_strategy1_packet_order()


@pytest.mark.parametrize("number,needle", _SIGNATURES)
def test_waterfall_signatures(number, needle, save_artifact):
    protocol, seed = _CASES[number]
    text = waterfall_for_trial(
        "china", protocol, deployed_strategy(number), seed=seed
    )
    assert needle in text, text


def test_strategy1_packet_order():
    """Figure 1, Strategy 1: SYN, RST, SYN, client SYN/ACK, ..."""
    text = waterfall_for_trial("china", "http", deployed_strategy(1), seed=3)
    lines = [l for l in text.splitlines() if "--->" in l or "<---" in l]
    assert "SYN" in lines[0] and "--->" in lines[0]
    assert "RST" in lines[1]
    assert lines[2].strip().startswith("<---") and "SYN" in lines[2]
    assert "SYN/ACK" in lines[3] and "--->" in lines[3]
