"""Performance benchmarks for the network-impairment layer.

Two costs matter:

- **Zero when off.** The null policy is normalized away, so unimpaired
  batches must run at pre-impairment speed (the layer adds no per-hop
  work). Asserted with a generous 15% tolerance against timer noise.
- **Bounded when on.** Impairment adds RNG draws per hop plus the TCP
  retransmissions it provokes; the measured overhead is recorded in
  ``benchmarks/results/`` alongside the robustness curves it buys.
"""

import time

from repro.core import deployed_strategy
from repro.eval.sweeps import DEFAULT_LOSS_GRID, impairment_robustness_sweep
from repro.runtime import TrialExecutor, TrialSpec, trial_seed

TRIALS = 100
POLICY = {"loss": 0.05, "reorder": 0.05, "jitter": 0.002}


def batch_specs(impairment=None):
    strategy = deployed_strategy(1)
    specs = []
    for index in range(TRIALS):
        extra = {}
        if impairment is not None:
            # Fan the net stream out per trial, as the batch APIs do — a
            # shared net_seed would correlate the loss draws across trials.
            extra = {"impairment": impairment, "net_seed": trial_seed(1, index)}
        specs.append(
            TrialSpec.build(
                "china", "http", strategy, seed=trial_seed(0, index), **extra
            )
        )
    return specs


def best_of(runs, fn):
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_perf_batch_unimpaired(benchmark):
    executor = TrialExecutor(workers=1)
    results = benchmark(executor.run_batch, batch_specs())
    assert len(results) == TRIALS


def test_perf_batch_impaired(benchmark):
    specs = batch_specs(impairment=POLICY)
    executor = TrialExecutor(workers=1)
    results = benchmark(executor.run_batch, specs)
    assert len(results) == TRIALS


def test_impairment_overhead_artifact(save_artifact):
    executor = TrialExecutor(workers=1)

    bare = batch_specs()
    null = batch_specs(impairment={})
    impaired = batch_specs(impairment=POLICY)
    executor.run_batch(bare)  # warm imports before timing anything

    t_bare = best_of(3, lambda: executor.run_batch(bare))
    t_null = best_of(3, lambda: executor.run_batch(null))
    t_impaired = best_of(3, lambda: executor.run_batch(impaired))

    # The null policy must cost (statistically) nothing.
    assert t_null <= t_bare * 1.15

    succeeded = sum(r.succeeded for r in executor.run_batch(impaired))
    curves = impairment_robustness_sweep(trials=10, net_seed=1)

    lines = [
        "Impairment overhead "
        f"({TRIALS} china/http trials, strategy 1, workers=1)",
        "",
        f"  unimpaired:   {t_bare * 1000:7.1f} ms",
        f"  null policy:  {t_null * 1000:7.1f} ms "
        f"({t_null / t_bare:.2f}x — must be ~1x)",
        f"  impaired:     {t_impaired * 1000:7.1f} ms "
        f"({t_impaired / t_bare:.2f}x at loss=5% reorder=5%)",
        "",
        f"  impaired success: {succeeded}/{TRIALS}",
        "",
        "Success vs per-link loss (10 trials/point, net_seed=1):",
    ]
    header = "  country      " + "".join(
        f"{rate:>7g}" for rate in DEFAULT_LOSS_GRID
    )
    lines.append(header)
    for country, curve in sorted(curves.items()):
        row = "".join(f"{curve[rate]:>7.2f}" for rate in DEFAULT_LOSS_GRID)
        lines.append(f"  {country:<13}{row}")

    save_artifact("perf_impairment.txt", "\n".join(lines))
