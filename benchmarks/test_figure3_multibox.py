"""Benchmark F3 — regenerate Figure 3 / §6 (multiple censorship boxes).

Two artifacts: (a) the protocol-dependence comparison between the real
multi-box GFW and a single-box ablation, (b) TTL-based localization
showing all five boxes colocated at the same hop.
"""

from repro.eval.multibox import (
    format_dependence,
    localize_boxes,
    protocol_dependence,
    single_box_profiles,
)

TRIALS = 150


def test_figure3_protocol_dependence(benchmark, save_artifact):
    multi = benchmark.pedantic(
        protocol_dependence,
        kwargs={"strategy_number": 7, "trials": TRIALS, "seed": 2},
        rounds=1,
        iterations=1,
    )
    single = protocol_dependence(
        7, trials=TRIALS, seed=2, profiles=single_box_profiles("http")
    )
    save_artifact("figure3_multibox.txt", format_dependence(multi, single))
    spread_multi = max(multi.values()) - min(multi.values())
    spread_single = max(single.values()) - min(single.values())
    # The paper's argument: TCP-level strategies are application-dependent
    # under the real GFW, uniform under a single-box censor.
    assert spread_multi > 0.5
    assert spread_single < 0.2
    assert multi["https"] < 0.15  # rule 2 excludes HTTPS entirely
    assert multi["ftp"] > 0.7     # rule 3 + combos make FTP easiest


def test_figure3_localization(benchmark, save_artifact):
    hops = benchmark.pedantic(
        localize_boxes, kwargs={"max_ttl": 6, "seed": 1}, rounds=1, iterations=1
    )
    lines = ["§6 — TTL localization of per-protocol censorship boxes"]
    for protocol, hop in hops.items():
        lines.append(f"{protocol:<8} first censoring hop: {hop}")
    lines.append("paper: censorship at the same hop for every protocol (colocated)")
    save_artifact("figure3_localization.txt", "\n".join(lines))
    assert len(set(hops.values())) == 1  # colocated
    assert hops["http"] == 3
