"""Performance benchmarks for the simulator itself.

These are genuine timing benchmarks (multiple rounds): how fast a full
censored-trial runs, how fast the packet codec round-trips, and the GA's
per-generation throughput — the numbers that bound how large Table 2 and
evolution runs can be.
"""

import random

from repro.core import Strategy, deployed_strategy
from repro.eval import run_trial
from repro.packets import Packet, make_tcp_packet


def test_perf_full_http_trial(benchmark):
    counter = iter(range(10_000_000))

    def one_trial():
        return run_trial("china", "http", deployed_strategy(1), seed=next(counter))

    result = benchmark(one_trial)
    assert result.outcome in ("success", "reset", "timeout")


def test_perf_dns_trial_with_retries(benchmark):
    counter = iter(range(10_000_000))

    def one_trial():
        return run_trial("china", "dns", deployed_strategy(1), seed=next(counter))

    result = benchmark(one_trial)
    assert result.outcome in ("success", "reset", "timeout", "garbled")


def test_perf_packet_round_trip(benchmark):
    packet = make_tcp_packet(
        "10.0.0.1", "10.0.0.2", 40000, 80, flags="PA", seq=1, ack=2,
        load=b"GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n",
        options=[("mss", 1460), ("wscale", 7), ("sackok", None)],
    )

    def round_trip():
        return Packet.parse(packet.serialize())

    parsed = benchmark(round_trip)
    assert parsed.load == packet.load


def test_perf_strategy_application(benchmark):
    strategy = deployed_strategy(6)
    synack = make_tcp_packet(
        "10.0.0.2", "10.0.0.1", 80, 40000, flags="SA", seq=1000, ack=2001
    )
    rng = random.Random(1)

    def apply():
        return strategy.apply_outbound(synack, rng)

    out = benchmark(apply)
    assert len(out) == 3


def test_perf_strategy_parse(benchmark):
    text = str(deployed_strategy(6))

    def parse():
        return Strategy.parse(text)

    parsed = benchmark(parse)
    assert not parsed.is_noop()
