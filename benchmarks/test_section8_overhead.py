"""Benchmark S8b — §8's deployment-overhead claim.

Measures the extra server packets and bytes each strategy adds to a
censor-free exchange. The paper claims at most three extra payloads; the
handshake-transforming strategies should add only a handful of small
packets.
"""

from repro.eval.overhead import format_overhead, measure_overhead


def _measure_all():
    return {
        number: measure_overhead(number, protocol="http", seed=1)
        for number in range(1, 12)
    }


def test_section8_overhead(benchmark, save_artifact):
    reports = benchmark.pedantic(_measure_all, rounds=1, iterations=1)
    save_artifact("section8_overhead.txt", format_overhead(reports))

    for number, report in reports.items():
        if number == 8:
            # Window reduction trades extra ACK round trips for evasion;
            # still bounded for a single-request exchange.
            assert report.extra_packets <= 12, report
            continue
        # Handshake-transforming strategies: at most 3 extra packets
        # (Strategies 6, 7 and 9 emit three packets for one SYN+ACK).
        assert 0 <= report.extra_packets <= 3, (number, report.extra_packets)
        assert report.extra_bytes <= 400, (number, report.extra_bytes)

    payload_strategies = {5, 9, 10}
    for number in payload_strategies:
        assert reports[number].extra_bytes > 0
