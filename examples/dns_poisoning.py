#!/usr/bin/env python3
"""The DNS censorship pipeline: UDP poisoning -> TCP RSTs -> evasion.

Shows why the paper's DNS workload is DNS-over-TCP and what server-side
evasion buys:

1. a plain UDP lookup for a censored name is poisoned by the GFW's forged
   ("lemon") response;
2. falling back to DNS-over-TCP, the GFW injects RSTs instead — also
   censored;
3. with Strategy 1 installed on the resolver (server side only), the
   unmodified client's DNS-over-TCP lookup succeeds.

Usage::

    python examples/dns_poisoning.py
"""

import random

from repro import deployed_strategy, run_trial, success_rate
from repro.apps.dns_udp import DNSOverUDPClient, DNSOverUDPServer, TRUE_ADDRESS
from repro.censors import GreatFirewall
from repro.netsim import Network, Scheduler
from repro.tcpstack import Host, personality

QNAME = "www.wikipedia.org"


def udp_lookup() -> None:
    scheduler = Scheduler()
    client = Host("client", "10.1.0.2", scheduler, random.Random(2),
                  personality("ubuntu-18.04.1"))
    server = Host("resolver", "192.0.2.10", scheduler, random.Random(3))
    gfw = GreatFirewall(rng=random.Random(7))
    network = Network(scheduler, client, server, [gfw])
    client.attach(network)
    server.attach(network)
    DNSOverUDPServer(server, 53).install()
    resolver = DNSOverUDPClient(client, "192.0.2.10", 53, qname=QNAME)
    resolver.start()
    scheduler.run(until=10)
    print(f"UDP lookup for {QNAME}:")
    print(f"  outcome: {resolver.outcome}")
    print(f"  answer:  {resolver.answer}  (true address: {TRUE_ADDRESS})")


def main() -> None:
    print("=" * 64)
    print("1. DNS over UDP: the GFW races a forged answer")
    print("=" * 64)
    udp_lookup()

    print()
    print("=" * 64)
    print("2. DNS over TCP, no evasion: RST injection")
    print("=" * 64)
    result = run_trial("china", "dns", None, seed=42, dns_tries=1)
    print(f"  outcome: {result.outcome} (censored: {result.censored})")

    print()
    print("=" * 64)
    print("3. DNS over TCP + Strategy 1 (server-side only)")
    print("=" * 64)
    rate = success_rate("china", "dns", deployed_strategy(1), trials=60, seed=5)
    print(f"  success over 60 lookups (3 tries each): {rate * 100:.0f}%  (paper: 89%)")


if __name__ == "__main__":
    main()
