#!/usr/bin/env python3
"""Quickstart: evade the simulated Great Firewall from the server side.

Runs an unmodified HTTP client inside "China" against a server outside,
first with no evasion (censored) and then with the paper's Strategy 1
(simultaneous open + injected RST) installed purely server-side. Prints
the packet waterfalls and measured success rates.

Usage::

    python examples/quickstart.py
"""

from repro import deployed_strategy, run_trial, success_rate
from repro.eval.waterfall import render_waterfall


def main() -> None:
    print("=" * 64)
    print("1. No evasion: the GFW tears the connection down")
    print("=" * 64)
    result = run_trial("china", "http", None, seed=1)
    print(render_waterfall(result.trace, title=f"outcome: {result.outcome}"))

    print()
    print("=" * 64)
    print("2. Strategy 1 (server-side only): unmodified client evades")
    print("=" * 64)
    strategy = deployed_strategy(1)
    print(f"strategy string: {strategy}")
    result = run_trial("china", "http", strategy, seed=3)
    print(render_waterfall(result.trace, title=f"outcome: {result.outcome}"))

    print()
    print("=" * 64)
    print("3. Success rates over 100 trials (paper: 3% baseline, 54% S1)")
    print("=" * 64)
    baseline = success_rate("china", "http", None, trials=100, seed=10)
    evading = success_rate("china", "http", strategy, trials=100, seed=10)
    print(f"no evasion: {baseline * 100:5.1f}%")
    print(f"strategy 1: {evading * 100:5.1f}%")


if __name__ == "__main__":
    main()
