#!/usr/bin/env python3
"""§7's client-compatibility study: 17 OSes × 11 strategies, plus carriers.

Runs every server-side strategy against every client OS profile on a
censor-free private network (the paper's methodology) and prints the
compatibility matrix — Strategies 5, 9 and 10 break Windows and macOS
clients, and the checksum-corrupted insertion-packet variants fix them.
Also reproduces the wifi / T-Mobile / AT&T anecdote.

Usage::

    python examples/client_compatibility.py
"""

from repro.eval.client_compat import (
    format_os_matrix,
    run_network_matrix,
    run_os_matrix,
)


def main() -> None:
    print("Running 17 OSes x 11 strategies (plus compat variants)...\n")
    matrix = run_os_matrix(seed=2)
    print(format_os_matrix(matrix))

    failures = matrix.failures()
    print(f"\nincompatibilities: {len(failures)}")
    for number, os_name in failures:
        fixed = matrix.compat_works.get((number, os_name))
        print(f"  strategy {number:>2} breaks {os_name:<30} compat variant works: {fixed}")

    print("\nNetwork compatibility (Android 10, no censor):")
    for network, row in run_network_matrix(seed=2).items():
        cells = "  ".join(
            f"S{n}:{'ok ' if ok else 'FAIL'}" for n, ok in sorted(row.items())
        )
        print(f"  {network:<10} {cells}")


if __name__ == "__main__":
    main()
