#!/usr/bin/env python3
"""§6's multi-box investigation: protocol dependence and TTL localization.

Shows that a strategy manipulating only the TCP handshake succeeds at very
different rates per application protocol under the GFW model (evidence of
separate per-protocol censorship boxes), that a single-box ablation erases
the differences, and that TTL-limited probes locate all five boxes at the
same hop (colocated).

Usage::

    python examples/multibox_probe.py
"""

from repro.eval.multibox import (
    format_dependence,
    localize_boxes,
    protocol_dependence,
    single_box_profiles,
)


def main() -> None:
    print("Measuring Strategy 7 (pure TCP manipulation) across protocols...")
    multi = protocol_dependence(strategy_number=7, trials=120, seed=2)
    single = protocol_dependence(
        strategy_number=7, trials=120, seed=2, profiles=single_box_profiles("http")
    )
    print(format_dependence(multi, single))
    print(
        "\nInterpretation: under one shared network stack the success rate\n"
        "would be uniform; the measured spread is the multi-box fingerprint."
    )

    print("\nLocating each protocol's censorship box with TTL-limited probes...")
    hops = localize_boxes(max_ttl=6, seed=1)
    for protocol, hop in hops.items():
        print(f"  {protocol:<6} first censoring hop: {hop}")
    if len(set(hops.values())) == 1:
        print("all protocols censored at the same hop -> the boxes are colocated")


if __name__ == "__main__":
    main()
