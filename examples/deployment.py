#!/usr/bin/env python3
"""§8's deployment story: mid-path strategies and per-client selection.

1. A CDN / reverse-proxy deployment: the strategy runs at a middlebox on
   the path between the censor and the server (the origin server is
   completely unmodified).
2. Per-client selection: a server host picks the right strategy from each
   client's SYN via IP-prefix geolocation — clients inside censored
   prefixes get evasion; everyone else gets vanilla TCP.

Usage::

    python examples/deployment.py
"""

import random

from repro import deployed_strategy
from repro.deploy import GeoStrategySelector, install_per_client
from repro.eval import run_trial
from repro.eval.runner import Trial


def mid_path() -> None:
    print("Strategy 1 at a mid-path proxy (hop 6; censor at hop 3):")
    wins = 0
    for i in range(40):
        result = run_trial(
            "china", "http", deployed_strategy(1), seed=100 + i, strategy_at_hop=6
        )
        wins += result.succeeded
    print(f"  success: {wins}/40 (same ~54% as a server-side install)")


def per_client() -> None:
    selector = GeoStrategySelector()
    selector.add_prefix("10.1.0.0/16", "china")
    selector.add_prefix("10.2.0.0/16", "kazakhstan")

    print("\nPer-client selection at the server (decision from the SYN):")
    for client_ip, country in [
        ("10.1.0.2", "china"),
        ("10.2.0.9", "kazakhstan"),
        ("203.0.113.5", "uncensored"),
    ]:
        trial_country = country if country != "uncensored" else None
        trial = Trial(trial_country, "http", None, seed=3, client_ip=client_ip)
        engine = install_per_client(
            trial.server_host, selector, "http", random.Random(3)
        )
        result = trial.run()
        decision = next(iter(engine.decisions.values()), None)
        chosen = decision.name if decision is not None else "none"
        print(
            f"  client {client_ip:<12} ({country:<11}) strategy={chosen:<12}"
            f" outcome={result.outcome}"
        )


def main() -> None:
    mid_path()
    per_client()


if __name__ == "__main__":
    main()
