#!/usr/bin/env python3
"""Discover a server-side evasion strategy from scratch with Geneva's GA.

Evolves packet-manipulation strategies against a simulated censor, exactly
as §4.1 of the paper does against live censors (the paper used population
300 × 50 generations; the simulated fitness landscape converges at much
smaller scales).

Usage::

    python examples/evolve_strategy.py [country] [protocol] [seed]

Defaults: kazakhstan http 3. Try ``china http 11`` for a probabilistic
censor — evolution finds a ~50% simultaneous-open strategy, matching the
paper's Table 2.
"""

import sys

from repro.core.evolution import CensorTrialEvaluator, GAConfig, GeneticAlgorithm
from repro.eval import success_rate


def main() -> None:
    country = sys.argv[1] if len(sys.argv) > 1 else "kazakhstan"
    protocol = sys.argv[2] if len(sys.argv) > 2 else "http"
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 3

    print(f"Evolving server-side strategies against {country}/{protocol} ...")
    evaluator = CensorTrialEvaluator(country, protocol, trials=3, seed=5)
    ga = GeneticAlgorithm(
        evaluator,
        config=GAConfig(
            population_size=30,
            generations=30,
            seed=seed,
            convergence_patience=12,
        ),
    )
    result = ga.run()

    print(f"\ngenerations run : {result.generations_run}")
    print("fitness history :", " ".join(f"{f:.0f}" for f in result.history))
    print(f"best fitness    : {result.best_fitness:.1f}")
    print(f"best strategy   : {result.best}")

    print("\nhall of fame:")
    for text, fitness in result.hall_of_fame[:5]:
        print(f"  {fitness:8.1f}  {text}")

    rate = success_rate(country, protocol, result.best, trials=50, seed=1000)
    print(f"\nvalidation: {rate * 100:.0f}% success over 50 fresh trials")


if __name__ == "__main__":
    main()
