#!/usr/bin/env python3
"""Kazakhstan's in-path MITM censor and the four strategies that beat it.

First shows the block-page injection (the forbidden request is intercepted
and never reaches the server), then runs Strategies 8–11 and renders their
Figure 2 waterfalls.

Usage::

    python examples/kazakhstan_blockpage.py
"""

from repro import deployed_strategy, run_trial
from repro.core import SERVER_STRATEGIES
from repro.eval.waterfall import render_waterfall


def main() -> None:
    print("=" * 64)
    print("Censorship: forbidden Host header -> MITM + block page")
    print("=" * 64)
    result = run_trial("kazakhstan", "http", None, seed=1)
    print(render_waterfall(result.trace, title=f"outcome: {result.outcome}"))
    server_got_request = any(
        e.kind == "recv" and e.location == "server" and e.packet and e.packet.load
        for e in result.trace.events
    )
    print(f"\nforbidden request reached the server: {server_got_request}")

    for number in (8, 9, 10, 11):
        record = SERVER_STRATEGIES[number]
        print()
        print("=" * 64)
        print(f"Strategy {number}: {record.name}")
        print("=" * 64)
        print(f"strategy string: {record.dsl}")
        result = run_trial("kazakhstan", "http", deployed_strategy(number), seed=3)
        print(render_waterfall(result.trace, title=f"outcome: {result.outcome}"))


if __name__ == "__main__":
    main()
